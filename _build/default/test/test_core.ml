(* Tests for the Musketeer core: calibration, estimation, mergeability,
   cost function, partitioning (exhaustive / memoized / DP / multi-order),
   job-graph extraction, the IR optimizer, idiom recognition, code
   generation, the executor (incl. WHILE expansion on MapReduce engines)
   and the facade. *)

open Relation

let cluster = Engines.Cluster.local_seven

(* one calibrated instance shared by the suite (calibration is pure) *)
let m = Musketeer.create ~cluster ()

let profile = Musketeer.profile m

let kv_schema =
  Schema.make [ { Schema.name = "k"; ty = Value.Tint };
                { Schema.name = "v"; ty = Value.Tint } ]

let kv_table rows =
  Table.create kv_schema
    (List.map (fun (k, v) -> [| Value.Int k; Value.Int v |]) rows)

let sample_rows = List.init 300 (fun i -> (i mod 30, i))

let hdfs_with bindings =
  let hdfs = Engines.Hdfs.create () in
  List.iter
    (fun (name, table, mb) -> Engines.Hdfs.put hdfs name ~modeled_mb:mb table)
    bindings;
  hdfs

let default_hdfs () = hdfs_with [ ("r", kv_table sample_rows, 512.) ]

(* select -> group_by -> select chain over relation r *)
let chain_graph () =
  let b = Ir.Builder.create () in
  let inp = Ir.Builder.input b "r" in
  let s1 = Ir.Builder.select b ~pred:Expr.(col "v" > int 5) inp in
  let g1 =
    Ir.Builder.group_by b ~keys:[ "k" ]
      ~aggs:[ Aggregate.make (Aggregate.Sum "v") ~as_name:"total" ]
      s1
  in
  let s2 = Ir.Builder.select b ~name:"out" ~pred:Expr.(col "total" > int 50) g1 in
  Ir.Builder.finish b ~outputs:[ s2 ]

let estimator_for ?(workflow = "wf") hdfs g =
  Musketeer.estimator m ~workflow ~hdfs g

(* ---------------- Profile / calibration ---------------- *)

let test_profile_covers_all_backends () =
  List.iter
    (fun backend ->
       let r = Musketeer.Profile.rates profile backend in
       Alcotest.(check bool)
         (Engines.Backend.name backend ^ " rates positive")
         true
         (r.Engines.Perf.pull_mb_s > 0. && r.Engines.Perf.process_mb_s > 0.
          && r.Engines.Perf.push_mb_s > 0. && r.Engines.Perf.comm_mb_s > 0.))
    Engines.Backend.all

let test_profile_relative_overheads () =
  let overhead backend =
    (Musketeer.Profile.rates profile backend).Engines.Perf.overhead_s
  in
  Alcotest.(check bool) "Hadoop heaviest startup" true
    (overhead Engines.Backend.Hadoop > overhead Engines.Backend.Naiad);
  Alcotest.(check bool) "serial C lightest" true
    (overhead Engines.Backend.Serial_c < overhead Engines.Backend.Spark)

let test_profile_naiad_iterates_cheaply () =
  let iter backend =
    (Musketeer.Profile.rates profile backend).Engines.Perf.iter_overhead_s
  in
  Alcotest.(check bool) "Naiad iterates cheaper than Hadoop chains" true
    (iter Engines.Backend.Naiad < iter Engines.Backend.Hadoop)

(* ---------------- History ---------------- *)

let test_history () =
  let h = Musketeer.History.create () in
  Alcotest.(check bool) "empty" true (Musketeer.History.is_empty h ~workflow:"w");
  Musketeer.History.record h ~workflow:"w" ~node_id:1 ~output_mb:10.;
  Musketeer.History.record h ~workflow:"w" ~node_id:2 ~output_mb:20.;
  Musketeer.History.record h ~workflow:"w" ~node_id:1 ~output_mb:12.;
  Alcotest.(check int) "coverage" 2 (Musketeer.History.coverage h ~workflow:"w");
  Alcotest.(check (option (float 1e-9))) "latest wins" (Some 12.)
    (Musketeer.History.lookup h ~workflow:"w" ~node_id:1);
  let filtered = Musketeer.History.filtered h ~keep:(fun id -> id = 2) in
  Alcotest.(check (option (float 1e-9))) "filtered out" None
    (Musketeer.History.lookup filtered ~workflow:"w" ~node_id:1);
  Musketeer.History.record_runtime h ~workflow:"w" ~makespan_s:33.;
  Alcotest.(check (option (float 1e-9))) "runtime" (Some 33.)
    (Musketeer.History.last_runtime h ~workflow:"w")

let test_history_persistence () =
  let h = Musketeer.History.create () in
  Musketeer.History.record h ~workflow:"wf" ~node_id:3 ~output_mb:12.5;
  Musketeer.History.record h ~workflow:"wf" ~node_id:7 ~output_mb:0.25;
  Musketeer.History.record_runtime h ~workflow:"wf" ~makespan_s:42.;
  let h' = Musketeer.History.of_string (Musketeer.History.to_string h) in
  Alcotest.(check (option (float 1e-6))) "size roundtrip" (Some 12.5)
    (Musketeer.History.lookup h' ~workflow:"wf" ~node_id:3);
  Alcotest.(check (option (float 1e-6))) "runtime roundtrip" (Some 42.)
    (Musketeer.History.last_runtime h' ~workflow:"wf");
  let file = Filename.temp_file "musketeer_history" ".txt" in
  Musketeer.History.save h ~filename:file;
  let loaded = Musketeer.History.load ~filename:file in
  Sys.remove file;
  Alcotest.(check int) "file roundtrip coverage" 2
    (Musketeer.History.coverage loaded ~workflow:"wf");
  (try
     ignore (Musketeer.History.of_string "size broken");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ---------------- Estimator ---------------- *)

let test_estimator_defaults_and_history () =
  let hdfs = default_hdfs () in
  let g = chain_graph () in
  let est = estimator_for hdfs g in
  Alcotest.(check (float 1e-6)) "input size" 512.
    (Musketeer.Estimator.output_mb est 0);
  Alcotest.(check bool) "select shrinks" true
    (Musketeer.Estimator.output_mb est 1 < 512.);
  Alcotest.(check bool) "no history" false
    (Musketeer.Estimator.from_history est 1);
  let h = Musketeer.History.create () in
  Musketeer.History.record h ~workflow:"wf" ~node_id:1 ~output_mb:7.;
  let m' = Musketeer.with_history m h in
  let est' = Musketeer.estimator m' ~workflow:"wf" ~hdfs g in
  Alcotest.(check (float 1e-6)) "history wins" 7.
    (Musketeer.Estimator.output_mb est' 1);
  Alcotest.(check bool) "flagged" true
    (Musketeer.Estimator.from_history est' 1)

let test_estimator_conservative_joins () =
  let b = Ir.Builder.create () in
  let l = Ir.Builder.input b "l" in
  let r = Ir.Builder.input b "r" in
  let j = Ir.Builder.join b ~left_key:"k" ~right_key:"k" l r in
  let g = Ir.Builder.finish b ~outputs:[ j ] in
  let hdfs =
    hdfs_with
      [ ("l", kv_table sample_rows, 100.); ("r", kv_table sample_rows, 100.) ]
  in
  let est = estimator_for hdfs g in
  Alcotest.(check bool) "join overestimated" true
    (Musketeer.Estimator.output_mb est (Ir.Builder.id j)
     >= Musketeer.Estimator.conservative_factor *. 100.)

let test_estimator_iterations () =
  Alcotest.(check int) "non-while" 1
    (Musketeer.Estimator.iterations Ir.Operator.Cross)

(* ---------------- Support (mergeability) ---------------- *)

let test_support_rules () =
  let g = chain_graph () in
  let all_ops = [ 1; 2; 3 ] in
  Alcotest.(check bool) "naiad merges all" true
    (Musketeer.Support.check_bool Engines.Backend.Naiad g all_ops);
  Alcotest.(check bool) "hadoop takes one shuffle" true
    (Musketeer.Support.check_bool Engines.Backend.Hadoop g all_ops);
  let pagerank = Workloads.Workflows.pagerank_gas () in
  let while_id =
    List.find_map
      (fun (n : Ir.Operator.node) ->
         match n.kind with Ir.Operator.While _ -> Some n.id | _ -> None)
      pagerank.Ir.Operator.nodes
    |> Option.get
  in
  Alcotest.(check bool) "hadoop runs WHILE as a job chain" true
    (Musketeer.Support.check_bool Engines.Backend.Hadoop pagerank
       [ while_id ]);
  Alcotest.(check bool) "powergraph takes the idiom" true
    (Musketeer.Support.check_bool Engines.Backend.Power_graph pagerank
       [ while_id ]);
  Alcotest.(check bool) "powergraph rejects relational ops" false
    (Musketeer.Support.check_bool Engines.Backend.Power_graph g all_ops)

(* ---------------- Cost ---------------- *)

let test_cost_finite_and_ordering () =
  let g = chain_graph () in
  let small = estimator_for (hdfs_with [ ("r", kv_table sample_rows, 64.) ]) g in
  let large =
    estimator_for (hdfs_with [ ("r", kv_table sample_rows, 8192.) ]) g
  in
  let cost est =
    Musketeer.Cost.seconds
      (Musketeer.Cost.job_cost ~profile ~graph:g ~est Engines.Backend.Naiad
         [ 1; 2; 3 ])
  in
  Alcotest.(check bool) "finite" true (Float.is_finite (cost small));
  Alcotest.(check bool) "more data costs more" true (cost large > cost small)

let test_cost_infeasible_paradigm () =
  let g = chain_graph () in
  let est = estimator_for (default_hdfs ()) g in
  match
    Musketeer.Cost.job_cost ~profile ~graph:g ~est
      Engines.Backend.Power_graph [ 1; 2; 3 ]
  with
  | Musketeer.Cost.Infeasible _ -> ()
  | Musketeer.Cost.Finite _ -> Alcotest.fail "expected infeasible"

let test_cost_conservative_first_run () =
  let b = Ir.Builder.create () in
  let l = Ir.Builder.input b "l" in
  let r = Ir.Builder.input b "r" in
  let j = Ir.Builder.join b ~left_key:"k" ~right_key:"k" l r in
  let s = Ir.Builder.select b ~name:"out" ~pred:Expr.(col "v" > int 0) j in
  let g = Ir.Builder.finish b ~outputs:[ s ] in
  let hdfs =
    hdfs_with
      [ ("l", kv_table sample_rows, 100.); ("r", kv_table sample_rows, 100.) ]
  in
  let est = estimator_for hdfs g in
  let merged =
    Musketeer.Cost.job_cost ~profile ~graph:g ~est Engines.Backend.Naiad
      [ Ir.Builder.id j; Ir.Builder.id s ]
  in
  Alcotest.(check bool) "merge across join infeasible without history" false
    (Musketeer.Cost.is_finite merged);
  let h = Musketeer.History.create () in
  Musketeer.History.record h ~workflow:"wf" ~node_id:(Ir.Builder.id j)
    ~output_mb:50.;
  let est' =
    Musketeer.estimator (Musketeer.with_history m h) ~workflow:"wf" ~hdfs g
  in
  let merged' =
    Musketeer.Cost.job_cost ~profile ~graph:g ~est:est' Engines.Backend.Naiad
      [ Ir.Builder.id j; Ir.Builder.id s ]
  in
  Alcotest.(check bool) "history unlocks the merge" true
    (Musketeer.Cost.is_finite merged')

(* ---------------- Partitioner ---------------- *)

let plan_or_fail p =
  match p with
  | Some plan -> plan
  | None -> Alcotest.fail "expected a plan"

let backends = Engines.Backend.all

let test_partitioner_merges_chain () =
  let g = chain_graph () in
  let est = estimator_for (default_hdfs ()) g in
  let plan =
    plan_or_fail (Musketeer.Partitioner.exhaustive ~profile ~est ~backends g)
  in
  Alcotest.(check int) "one job" 1 (List.length plan.Musketeer.Partitioner.jobs)

let netflix_est () =
  let g = Workloads.Workflows.netflix () in
  let ratings, movies = Workloads.Datagen.netflix ~movies:4000 () in
  let hdfs =
    hdfs_with
      [ ("ratings", ratings.Workloads.Datagen.table,
         ratings.Workloads.Datagen.modeled_mb);
        ("movies", movies.Workloads.Datagen.table,
         movies.Workloads.Datagen.modeled_mb) ]
  in
  (g, estimator_for hdfs g)

let test_exhaustive_equals_memoized () =
  let g = Workloads.Workflows.tpch_q17 () in
  let lineitem, part = Workloads.Datagen.tpch ~scale_factor:10 () in
  let hdfs =
    hdfs_with
      [ ("lineitem", lineitem.Workloads.Datagen.table,
         lineitem.Workloads.Datagen.modeled_mb);
        ("part", part.Workloads.Datagen.table,
         part.Workloads.Datagen.modeled_mb) ]
  in
  let est = estimator_for hdfs g in
  let a =
    plan_or_fail (Musketeer.Partitioner.exhaustive ~profile ~est ~backends g)
  and b =
    plan_or_fail
      (Musketeer.Partitioner.exhaustive_memoized ~profile ~est ~backends g)
  in
  Alcotest.(check (float 1e-6)) "same optimum"
    a.Musketeer.Partitioner.cost_s b.Musketeer.Partitioner.cost_s

let test_exhaustive_not_worse_than_dynamic () =
  let g, est = netflix_est () in
  let exhaustive =
    plan_or_fail
      (Musketeer.Partitioner.exhaustive_memoized ~profile ~est ~backends g)
  and dynamic =
    plan_or_fail (Musketeer.Partitioner.dynamic ~profile ~est ~backends g)
  in
  Alcotest.(check bool) "exhaustive <= dynamic" true
    (exhaustive.Musketeer.Partitioner.cost_s
     <= dynamic.Musketeer.Partitioner.cost_s +. 1e-6)

let test_no_merging_one_job_per_op () =
  let g = chain_graph () in
  let est = estimator_for (default_hdfs ()) g in
  let plan =
    plan_or_fail (Musketeer.Partitioner.no_merging ~profile ~est ~backends g)
  in
  Alcotest.(check int) "three jobs" 3
    (List.length plan.Musketeer.Partitioner.jobs)

let test_forced_backend () =
  let g = chain_graph () in
  let est = estimator_for (default_hdfs ()) g in
  let plan =
    plan_or_fail
      (Musketeer.Partitioner.partition ~profile ~est
         ~backends:[ Engines.Backend.Hadoop ] g)
  in
  List.iter
    (fun (backend, _) ->
       Alcotest.(check bool) "hadoop only" true
         (backend = Engines.Backend.Hadoop))
    plan.Musketeer.Partitioner.jobs

(* The Figure 16 workflow: the depth-first linearization separates the
   top JOIN from the PROJECT it could merge with on a MapReduce engine;
   the multi-order variant must never do worse. *)
let fig16_graph () =
  let b = Ir.Builder.create () in
  let r1 = Ir.Builder.input b "f1" in
  let r2 = Ir.Builder.input b "f2" in
  let r3 = Ir.Builder.input b "f3" in
  let s1 = Ir.Builder.select b ~pred:Expr.(col "v" > int 0) r1 in
  let g1 =
    Ir.Builder.group_by b ~keys:[ "k" ]
      ~aggs:[ Aggregate.make (Aggregate.Sum "v") ~as_name:"v" ]
      s1
  in
  let s2 = Ir.Builder.select b ~pred:Expr.(col "v" < int 100) r2 in
  let j1 = Ir.Builder.join b ~left_key:"k" ~right_key:"k" s2 r3 in
  let p1 = Ir.Builder.project b ~columns:[ "k"; "v" ] j1 in
  let j2 = Ir.Builder.join b ~name:"out" ~left_key:"k" ~right_key:"k" g1 p1 in
  Ir.Builder.finish b ~outputs:[ j2 ]

let fig16_est () =
  let hdfs =
    hdfs_with
      [ ("f1", kv_table sample_rows, 100.);
        ("f2", kv_table sample_rows, 100.);
        ("f3", kv_table sample_rows, 100.) ]
  in
  let h = Musketeer.History.create () in
  let g = fig16_graph () in
  List.iter
    (fun (n : Ir.Operator.node) ->
       Musketeer.History.record h ~workflow:"fig16" ~node_id:n.id
         ~output_mb:50.)
    g.Ir.Operator.nodes;
  (g,
   Musketeer.estimator (Musketeer.with_history m h) ~workflow:"fig16" ~hdfs g)

let test_fig16_multi_order_not_worse () =
  let g, est = fig16_est () in
  let mr = [ Engines.Backend.Hadoop ] in
  let single =
    plan_or_fail (Musketeer.Partitioner.dynamic ~profile ~est ~backends:mr g)
  and multi =
    plan_or_fail
      (Musketeer.Partitioner.dynamic_multi_order ~orders:24 ~profile ~est
         ~backends:mr g)
  in
  Alcotest.(check bool) "multi-order at least as good" true
    (multi.Musketeer.Partitioner.cost_s
     <= single.Musketeer.Partitioner.cost_s +. 1e-6)

(* ---------------- Jobgraph ---------------- *)

let test_jobgraph_extract_runs () =
  let g = chain_graph () in
  let hdfs = default_hdfs () in
  let job1 = Musketeer.Jobgraph.extract g [ 1; 2 ] in
  let job2 = Musketeer.Jobgraph.extract g [ 3 ] in
  let store =
    Ir.Interp.store_of_list [ ("r", Engines.Hdfs.table hdfs "r") ]
  in
  let bindings1 = Ir.Interp.outputs ~store job1 in
  let store2 = Ir.Interp.store_of_list bindings1 in
  let bindings2 = Ir.Interp.outputs ~store:store2 job2 in
  let direct = Ir.Interp.outputs ~store (chain_graph ()) in
  Alcotest.(check bool) "two jobs equal one" true
    (Table.equal_unordered (snd (List.hd bindings2)) (snd (List.hd direct)))

let test_jobgraph_mapping () =
  let g = chain_graph () in
  let _, mapping = Musketeer.Jobgraph.extract_mapped g [ 1; 2 ] in
  List.iter
    (fun (_, old_id) ->
       Alcotest.(check bool) "maps into the original set" true
         (List.mem old_id [ 0; 1; 2 ]))
    mapping

let test_jobgraph_rejects_nonconvex () =
  let g = chain_graph () in
  (try
     ignore (Musketeer.Jobgraph.extract g [ 1; 3 ]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ---------------- Optimizer ---------------- *)

let catalog_for hdfs r = Table.schema (Engines.Hdfs.table hdfs r)

let test_optimizer_select_through_join () =
  let b = Ir.Builder.create () in
  let l = Ir.Builder.input b "l" in
  let r = Ir.Builder.input b "r" in
  let j = Ir.Builder.join b ~left_key:"k" ~right_key:"k" l r in
  let s = Ir.Builder.select b ~name:"out" ~pred:Expr.(col "v" > int 10) j in
  let g = Ir.Builder.finish b ~outputs:[ s ] in
  let hdfs =
    hdfs_with
      [ ("l", kv_table sample_rows, 10.); ("r", kv_table sample_rows, 10.) ]
  in
  let optimized = Musketeer.Optimizer.optimize ~catalog:(catalog_for hdfs) g in
  let select_input_kind =
    List.find_map
      (fun (n : Ir.Operator.node) ->
         match n.kind with
         | Ir.Operator.Select _ ->
           Some (Ir.Dag.node optimized (List.hd n.inputs)).Ir.Operator.kind
         | _ -> None)
      optimized.Ir.Operator.nodes
  in
  (match select_input_kind with
   | Some (Ir.Operator.Input _) -> ()
   | _ -> Alcotest.fail "select was not pushed below the join");
  let store =
    Ir.Interp.store_of_list
      [ ("l", kv_table sample_rows); ("r", kv_table sample_rows) ]
  in
  Alcotest.(check bool) "same results" true
    (Table.equal_unordered
       (snd (List.hd (Ir.Interp.outputs ~store g)))
       (snd (List.hd (Ir.Interp.outputs ~store optimized))))

let test_optimizer_fuses_selects () =
  let b = Ir.Builder.create () in
  let inp = Ir.Builder.input b "r" in
  let s1 = Ir.Builder.select b ~pred:Expr.(col "v" > int 1) inp in
  let s2 = Ir.Builder.select b ~name:"out" ~pred:Expr.(col "v" < int 90) s1 in
  let g = Ir.Builder.finish b ~outputs:[ s2 ] in
  let hdfs = default_hdfs () in
  let optimized = Musketeer.Optimizer.optimize ~catalog:(catalog_for hdfs) g in
  Alcotest.(check int) "one operator left" 1 (Ir.Dag.operator_count optimized);
  let store = Ir.Interp.store_of_list [ ("r", kv_table sample_rows) ] in
  Alcotest.(check bool) "same results" true
    (Table.equal_unordered
       (snd (List.hd (Ir.Interp.outputs ~store g)))
       (snd (List.hd (Ir.Interp.outputs ~store optimized))))

let test_optimizer_dead_elimination () =
  let b = Ir.Builder.create () in
  let inp = Ir.Builder.input b "r" in
  let _dead = Ir.Builder.distinct b inp in
  let live = Ir.Builder.select b ~name:"out" ~pred:Expr.(col "v" > int 0) inp in
  let g = Ir.Builder.finish b ~outputs:[ live ] in
  let hdfs = default_hdfs () in
  let optimized = Musketeer.Optimizer.optimize ~catalog:(catalog_for hdfs) g in
  Alcotest.(check int) "dead distinct removed" 1
    (Ir.Dag.operator_count optimized)

let test_optimizer_select_through_distinct_and_difference () =
  let hdfs =
    hdfs_with
      [ ("a", kv_table sample_rows, 10.); ("b", kv_table sample_rows, 10.) ]
  in
  (* select over distinct *)
  let b1 = Ir.Builder.create () in
  let inp = Ir.Builder.input b1 "a" in
  let d = Ir.Builder.distinct b1 inp in
  let s = Ir.Builder.select b1 ~name:"out" ~pred:Expr.(col "v" > int 10) d in
  let g1 = Ir.Builder.finish b1 ~outputs:[ s ] in
  let o1 = Musketeer.Optimizer.optimize ~catalog:(catalog_for hdfs) g1 in
  let first_op =
    List.find
      (fun (n : Ir.Operator.node) ->
         match n.kind with Ir.Operator.Input _ -> false | _ -> true)
      (Ir.Dag.topological_order o1)
  in
  (match first_op.kind with
   | Ir.Operator.Select _ -> ()
   | _ -> Alcotest.fail "select not pushed below distinct");
  (* select over difference; check semantics on data *)
  let b2 = Ir.Builder.create () in
  let l = Ir.Builder.input b2 "a" in
  let r = Ir.Builder.input b2 "b" in
  let diff = Ir.Builder.difference b2 l r in
  let s2 =
    Ir.Builder.select b2 ~name:"out" ~pred:Expr.(col "v" > int 10) diff
  in
  let g2 = Ir.Builder.finish b2 ~outputs:[ s2 ] in
  let o2 = Musketeer.Optimizer.optimize ~catalog:(catalog_for hdfs) g2 in
  let store =
    Ir.Interp.store_of_list
      [ ("a", kv_table sample_rows);
        ("b", kv_table (List.init 150 (fun i -> (i mod 30, i)))) ]
  in
  Alcotest.(check bool) "difference push-down preserves semantics" true
    (Table.equal_unordered
       (snd (List.hd (Ir.Interp.outputs ~store g2)))
       (snd (List.hd (Ir.Interp.outputs ~store o2))))

let test_extended_backends_plannable () =
  (* the extension engines are calibrated and usable via
     ~backends:Engines.Backend.extended *)
  let g = Workloads.Workflows.pagerank_gas ~iterations:2 () in
  let edges, vertices =
    Workloads.Datagen.graph_tables Workloads.Datagen.orkut ~edges:()
  in
  let hdfs =
    hdfs_with
      [ ("edges", edges.Workloads.Datagen.table, 64.);
        ("vertices", vertices.Workloads.Datagen.table, 8.) ]
  in
  List.iter
    (fun backend ->
       let est = estimator_for hdfs g in
       match
         Musketeer.Partitioner.partition ~profile ~est ~backends:[ backend ] g
       with
       | Some plan ->
         Alcotest.(check bool)
           (Engines.Backend.name backend ^ " plans the GAS workflow")
           true
           (plan.Musketeer.Partitioner.jobs <> [])
       | None ->
         Alcotest.fail (Engines.Backend.name backend ^ " failed to plan"))
    [ Engines.Backend.Giraph; Engines.Backend.X_stream ]

let test_dag_to_dot () =
  let dot = Ir.Dag.to_dot (Workloads.Workflows.pagerank_gas ()) in
  let contains needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length dot
      && (String.sub dot i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph");
  Alcotest.(check bool) "while cluster" true (contains "subgraph cluster_");
  Alcotest.(check bool) "edges" true (contains "->")

let wide_schema =
  Schema.make
    [ { Schema.name = "k"; ty = Value.Tint };
      { Schema.name = "v"; ty = Value.Tint };
      { Schema.name = "note"; ty = Value.Tstring };
      { Schema.name = "extra"; ty = Value.Tfloat } ]

let wide_table rows =
  Table.create wide_schema
    (List.map
       (fun (k, v) ->
          [| Value.Int k; Value.Int v; Value.Str "x"; Value.Float 0.5 |])
       rows)

let test_column_pruning () =
  (* the workflow only reads k and v; note/extra are dead at the scan *)
  let b = Ir.Builder.create () in
  let inp = Ir.Builder.input b "wide" in
  let s = Ir.Builder.select b ~pred:Expr.(col "v" > int 10) inp in
  let grp =
    Ir.Builder.group_by b ~name:"out" ~keys:[ "k" ]
      ~aggs:[ Aggregate.make (Aggregate.Sum "v") ~as_name:"total" ]
      s
  in
  let g = Ir.Builder.finish b ~outputs:[ grp ] in
  let hdfs = hdfs_with [ ("wide", wide_table sample_rows, 100.) ] in
  let required =
    Musketeer.Column_pruning.required_columns
      ~catalog:(catalog_for hdfs) g
  in
  Alcotest.(check (list string)) "live columns at the input" [ "k"; "v" ]
    (List.sort compare (Hashtbl.find required 0));
  let optimized = Musketeer.Optimizer.optimize ~catalog:(catalog_for hdfs) g in
  let has_pruning_project =
    List.exists
      (fun (n : Ir.Operator.node) ->
         match n.kind with
         | Ir.Operator.Project { columns } ->
           List.sort compare columns = [ "k"; "v" ]
         | _ -> false)
      optimized.Ir.Operator.nodes
  in
  Alcotest.(check bool) "pruning project inserted" true has_pruning_project;
  let store = Ir.Interp.store_of_list [ ("wide", wide_table sample_rows) ] in
  Alcotest.(check bool) "same results" true
    (Table.equal_unordered
       (snd (List.hd (Ir.Interp.outputs ~store g)))
       (snd (List.hd (Ir.Interp.outputs ~store optimized))));
  (* optimizing again is a fixpoint (no repeated insertion) *)
  let twice =
    Musketeer.Optimizer.optimize ~catalog:(catalog_for hdfs) optimized
  in
  Alcotest.(check int) "fixpoint" (Ir.Dag.operator_count optimized)
    (Ir.Dag.operator_count twice)

let test_column_pruning_respects_set_ops () =
  (* DISTINCT compares whole rows: nothing may be pruned *)
  let b = Ir.Builder.create () in
  let inp = Ir.Builder.input b "wide" in
  let d = Ir.Builder.distinct b inp in
  let s =
    Ir.Builder.select b ~name:"out" ~pred:Expr.(col "v" > int 10) d
  in
  let g = Ir.Builder.finish b ~outputs:[ s ] in
  let hdfs = hdfs_with [ ("wide", wide_table sample_rows, 100.) ] in
  let required =
    Musketeer.Column_pruning.required_columns ~catalog:(catalog_for hdfs) g
  in
  Alcotest.(check int) "all columns live" 4
    (List.length (Hashtbl.find required 0))

let prop_optimizer_preserves_semantics =
  QCheck.Test.make ~name:"optimizer preserves semantics" ~count:40
    (QCheck.pair (QCheck.int_range 0 50) (QCheck.int_range 50 100))
    (fun (lo, hi) ->
       let b = Ir.Builder.create () in
       let inp = Ir.Builder.input b "r" in
       let m1 = Ir.Builder.map b ~target:"w" ~expr:Expr.(col "v" * int 2) inp in
       let s1 = Ir.Builder.select b ~pred:Expr.(col "v" > int lo) m1 in
       let s2 =
         Ir.Builder.select b ~name:"out" ~pred:Expr.(col "v" < int hi) s1
       in
       let g = Ir.Builder.finish b ~outputs:[ s2 ] in
       let hdfs = default_hdfs () in
       let optimized =
         Musketeer.Optimizer.optimize ~catalog:(catalog_for hdfs) g
       in
       let store = Ir.Interp.store_of_list [ ("r", kv_table sample_rows) ] in
       Table.equal_unordered
         (snd (List.hd (Ir.Interp.outputs ~store g)))
         (snd (List.hd (Ir.Interp.outputs ~store optimized))))

(* ---------------- Idiom ---------------- *)

let test_idiom_detects_pagerank () =
  match
    Musketeer.Idiom.detect_graph_workload (Workloads.Workflows.pagerank_gas ())
  with
  | Some idiom ->
    Alcotest.(check bool) "has apply ops" true
      (idiom.Musketeer.Idiom.apply_ids <> [])
  | None -> Alcotest.fail "pagerank not detected"

let test_idiom_rejects_kmeans () =
  Alcotest.(check bool) "kmeans not a graph workload" true
    (Musketeer.Idiom.detect_graph_workload
       (Workloads.Workflows.kmeans ~iterations:2 ())
     = None)

(* §8: a triangle-count-style workflow (joins, no WHILE) is a graph
   workload the recognizer soundly fails to classify *)
let test_idiom_soundness_not_completeness () =
  let b = Ir.Builder.create () in
  let e1 = Ir.Builder.input b "edges" in
  let j1 = Ir.Builder.join b ~left_key:"dst" ~right_key:"src" e1 e1 in
  let j2 = Ir.Builder.join b ~left_key:"src" ~right_key:"dst" j1 e1 in
  let s =
    Ir.Builder.select b ~name:"triangles" ~pred:Expr.(col "src" < col "dst") j2
  in
  let g = Ir.Builder.finish b ~outputs:[ s ] in
  Alcotest.(check bool) "triangle counting missed (known limitation)" true
    (Musketeer.Idiom.detect_graph_workload g = None)

let test_idiom_repeated_self_join () =
  (* the triangle-count shape: the edge relation self-joined twice *)
  let b = Ir.Builder.create () in
  let e1 = Ir.Builder.input b "edges" in
  let j1 = Ir.Builder.join b ~left_key:"v" ~right_key:"k" e1 e1 in
  let j2 = Ir.Builder.join b ~name:"tri" ~left_key:"k" ~right_key:"v" j1 e1 in
  let g = Ir.Builder.finish b ~outputs:[ j2 ] in
  Alcotest.(check bool) "self-join heuristic fires" true
    (Musketeer.Idiom.repeated_self_join g <> None);
  (* an ordinary two-relation join does not *)
  let b2 = Ir.Builder.create () in
  let l = Ir.Builder.input b2 "l" in
  let r = Ir.Builder.input b2 "r" in
  let j = Ir.Builder.join b2 ~name:"o" ~left_key:"k" ~right_key:"k" l r in
  let g2 = Ir.Builder.finish b2 ~outputs:[ j ] in
  Alcotest.(check bool) "plain join does not fire" true
    (Musketeer.Idiom.repeated_self_join g2 = None)

let test_idiom_associativity () =
  let b = Ir.Builder.create () in
  let inp = Ir.Builder.input b "r" in
  let g1 =
    Ir.Builder.group_by b ~keys:[ "k" ]
      ~aggs:[ Aggregate.make (Aggregate.Avg "v") ~as_name:"a" ]
      inp
  in
  let g = Ir.Builder.finish b ~outputs:[ g1 ] in
  Alcotest.(check bool) "avg not associative" false
    (Musketeer.Idiom.all_aggregations_associative g);
  Alcotest.(check (list int)) "no associative nodes" []
    (Musketeer.Idiom.associative_aggregations g)

(* ---------------- Codegen ---------------- *)

let test_codegen_pass_counts () =
  let g = Workloads.Workflows.tpch_q17 () in
  let generated =
    Musketeer.Codegen.generate ~label:"q17" ~backend:Engines.Backend.Naiad g
  in
  Alcotest.(check bool) "naive makes several passes" true
    (generated.Musketeer.Codegen.naive_passes > 3);
  Alcotest.(check int) "optimized makes one pass" 1
    generated.Musketeer.Codegen.passes;
  let naive =
    Musketeer.Codegen.generate ~share_scans:false ~infer_types:false
      ~label:"q17" ~backend:Engines.Backend.Naiad g
  in
  Alcotest.(check int) "unoptimized code keeps the naive passes"
    naive.Musketeer.Codegen.naive_passes naive.Musketeer.Codegen.passes

let test_codegen_spark_residual_pass () =
  let g = Workloads.Workflows.netflix () in
  let spark =
    Musketeer.Codegen.generate ~label:"n" ~backend:Engines.Backend.Spark g
  and naiad =
    Musketeer.Codegen.generate ~label:"n" ~backend:Engines.Backend.Naiad g
  in
  Alcotest.(check int) "spark pays one extra pass"
    (naiad.Musketeer.Codegen.passes + 1)
    spark.Musketeer.Codegen.passes

let test_codegen_listing_3_vs_4 () =
  let b = Ir.Builder.create () in
  let props = Ir.Builder.input b "properties" in
  let prices = Ir.Builder.input b "prices" in
  let locs = Ir.Builder.project b ~columns:[ "k"; "v" ] props in
  let j = Ir.Builder.join b ~left_key:"k" ~right_key:"k" locs prices in
  let grp =
    Ir.Builder.group_by b ~name:"street_price" ~keys:[ "k" ]
      ~aggs:[ Aggregate.make (Aggregate.Max "v") ~as_name:"max_price" ]
      j
  in
  let g = Ir.Builder.finish b ~outputs:[ grp ] in
  let optimized =
    Musketeer.Render.render Engines.Backend.Spark ~shared_scans:true g
  and naive =
    Musketeer.Render.render Engines.Backend.Spark ~shared_scans:false g
  in
  let count_substring haystack needle =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length haystack then acc
      else if String.sub haystack i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check bool) "naive emits more map passes" true
    (count_substring naive ".map" > count_substring optimized ".map")

let test_codegen_renders_all_backends () =
  let g = Workloads.Workflows.pagerank_gas () in
  List.iter
    (fun backend ->
       let source = Musketeer.Render.render backend ~shared_scans:true g in
       Alcotest.(check bool)
         (Engines.Backend.name backend ^ " renders")
         true
         (String.length source > 0))
    Engines.Backend.all

(* ---------------- Executor ---------------- *)

let run_workflow ?backends workflow g hdfs =
  match Musketeer.plan m ?backends ~workflow ~hdfs g with
  | None -> Alcotest.fail "no plan"
  | Some (plan, g') -> (
    match
      Musketeer.execute_plan m ~workflow ~hdfs:(Engines.Hdfs.snapshot hdfs)
        ~graph:g' plan
    with
    | Ok result -> result
    | Error e -> Alcotest.fail (Engines.Report.error_to_string e))

let test_executor_matches_interp () =
  let g = chain_graph () in
  let hdfs = default_hdfs () in
  let result = run_workflow "chain" g hdfs in
  let store = Ir.Interp.store_of_list [ ("r", kv_table sample_rows) ] in
  let expected = snd (List.hd (Ir.Interp.outputs ~store g)) in
  Alcotest.(check bool) "executor output equals interp" true
    (Table.equal_unordered expected
       (List.assoc "out" result.Musketeer.Executor.outputs))

let test_executor_while_expansion_equivalence () =
  let edges, vertices =
    Workloads.Datagen.graph_tables Workloads.Datagen.orkut ~edges:()
  in
  let hdfs =
    hdfs_with
      [ ("edges", edges.Workloads.Datagen.table, 64.);
        ("vertices", vertices.Workloads.Datagen.table, 8.) ]
  in
  let g = Workloads.Workflows.pagerank_gas ~iterations:3 () in
  let naiad = run_workflow ~backends:[ Engines.Backend.Naiad ] "pr" g hdfs in
  let hadoop = run_workflow ~backends:[ Engines.Backend.Hadoop ] "pr" g hdfs in
  Alcotest.(check bool) "identical ranks" true
    (Table.equal_unordered
       (List.assoc "vertices_final" naiad.Musketeer.Executor.outputs)
       (List.assoc "vertices_final" hadoop.Musketeer.Executor.outputs));
  Alcotest.(check bool) "hadoop ran many jobs" true
    (List.length hadoop.Musketeer.Executor.reports
     > 2 * List.length naiad.Musketeer.Executor.reports);
  Alcotest.(check bool) "hadoop far slower" true
    (hadoop.Musketeer.Executor.makespan_s
     > 2. *. naiad.Musketeer.Executor.makespan_s)

let test_executor_records_history () =
  let g = chain_graph () in
  let hdfs = default_hdfs () in
  let h = Musketeer.History.create () in
  let m' = Musketeer.with_history m h in
  (match Musketeer.plan m' ~workflow:"hist" ~hdfs g with
   | Some (plan, g') ->
     ignore
       (Musketeer.execute_plan m' ~workflow:"hist"
          ~hdfs:(Engines.Hdfs.snapshot hdfs) ~graph:g' plan)
   | None -> Alcotest.fail "no plan");
  Alcotest.(check bool) "history populated" true
    (Musketeer.History.coverage h ~workflow:"hist" > 0);
  Alcotest.(check bool) "runtime recorded" true
    (Musketeer.History.last_runtime h ~workflow:"hist" <> None)

let test_executor_cross_engine_combo () =
  (* batch phase on Hadoop, iterative phase on PowerGraph — the §6.3
     combination, executed via a hand-constructed plan; results must
     equal the reference interpreter *)
  let a, b_ = Workloads.Datagen.community_pair ~sample_vertices:60 () in
  let hdfs =
    hdfs_with
      [ ("edges_a", a.Workloads.Datagen.table, 64.);
        ("edges_b", b_.Workloads.Datagen.table, 64.) ]
  in
  let g = Workloads.Workflows.cross_community_pagerank ~iterations:2 () in
  let while_id =
    List.find_map
      (fun (n : Ir.Operator.node) ->
         match n.kind with Ir.Operator.While _ -> Some n.id | _ -> None)
      g.Ir.Operator.nodes
    |> Option.get
  in
  (* split the batch ops into <=1-shuffle jobs for Hadoop *)
  let batch =
    List.filter_map
      (fun (n : Ir.Operator.node) ->
         match n.kind with
         | Ir.Operator.Input _ | Ir.Operator.While _ -> None
         | _ -> Some n.id)
      g.Ir.Operator.nodes
  in
  let jobs = ref [] and current = ref [] and shuffles = ref 0 in
  List.iter
    (fun id ->
       let s =
         if Ir.Operator.needs_shuffle (Ir.Dag.node g id).Ir.Operator.kind
         then 1
         else 0
       in
       if !shuffles + s > 1 then begin
         jobs := (Engines.Backend.Hadoop, List.rev !current) :: !jobs;
         current := [ id ];
         shuffles := s
       end
       else begin
         current := id :: !current;
         shuffles := !shuffles + s
       end)
    batch;
  if !current <> [] then
    jobs := (Engines.Backend.Hadoop, List.rev !current) :: !jobs;
  let plan =
    { Musketeer.Partitioner.jobs =
        List.rev !jobs @ [ (Engines.Backend.Power_graph, [ while_id ]) ];
      cost_s = 0. }
  in
  match
    Musketeer.execute_plan ~record_history:false m ~workflow:"combo"
      ~hdfs:(Engines.Hdfs.snapshot hdfs) ~graph:g plan
  with
  | Error e -> Alcotest.fail (Engines.Report.error_to_string e)
  | Ok result ->
    let store =
      Ir.Interp.store_of_list
        [ ("edges_a", a.Workloads.Datagen.table);
          ("edges_b", b_.Workloads.Datagen.table) ]
    in
    let expected = snd (List.hd (Ir.Interp.outputs ~store g)) in
    Alcotest.(check bool) "combo result equals interp" true
      (Table.equal_unordered expected
         (List.assoc "cc_ranks" result.Musketeer.Executor.outputs));
    Alcotest.(check bool) "several engines involved" true
      (List.length result.Musketeer.Executor.reports >= 2)

(* ---------------- Mapper (decision tree) ---------------- *)

let test_decision_tree_branches () =
  let tree ~input_mb ~nodes g =
    Musketeer.Mapper.decision_tree ~cluster:(Engines.Cluster.ec2 ~nodes)
      ~input_mb g
  in
  let pagerank = Workloads.Workflows.pagerank_gas () in
  Alcotest.(check bool) "small graph -> GraphChi" true
    (tree ~input_mb:500. ~nodes:100 pagerank = Engines.Backend.Graph_chi);
  Alcotest.(check bool) "big graph, small cluster -> PowerGraph" true
    (tree ~input_mb:20000. ~nodes:16 pagerank = Engines.Backend.Power_graph);
  Alcotest.(check bool) "big graph, big cluster -> Naiad" true
    (tree ~input_mb:20000. ~nodes:100 pagerank = Engines.Backend.Naiad);
  let batch = chain_graph () in
  Alcotest.(check bool) "tiny batch -> serial C" true
    (tree ~input_mb:10. ~nodes:16 batch = Engines.Backend.Serial_c);
  Alcotest.(check bool) "small batch -> Metis" true
    (tree ~input_mb:300. ~nodes:16 batch = Engines.Backend.Metis);
  Alcotest.(check bool) "large batch -> Hadoop" true
    (tree ~input_mb:50000. ~nodes:16 batch = Engines.Backend.Hadoop);
  let iterative = Workloads.Workflows.kmeans ~iterations:2 () in
  Alcotest.(check bool) "iterative non-graph -> Spark" true
    (tree ~input_mb:5000. ~nodes:16 iterative = Engines.Backend.Spark)

(* ---------------- Facade ---------------- *)

let test_explain_report () =
  let g = chain_graph () in
  let hdfs = default_hdfs () in
  let report = Musketeer.explain m ~workflow:"explain" ~hdfs g in
  Alcotest.(check bool) "estimates for every node" true
    (List.length report.Musketeer.Explain.estimates
     = List.length g.Ir.Operator.nodes);
  Alcotest.(check bool) "a plan was found" true
    (report.Musketeer.Explain.plan <> None);
  Alcotest.(check int) "alternative per backend" 7
    (List.length report.Musketeer.Explain.alternatives);
  (* the rendered forms do not raise and mention the chosen backend *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Musketeer.Explain.pp ppf report;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "pp output nonempty" true (Buffer.length buf > 100);
  match report.Musketeer.Explain.plan with
  | Some plan ->
    let dot =
      Musketeer.Explain.plan_dot report.Musketeer.Explain.optimized plan
    in
    Alcotest.(check bool) "plan dot" true
      (String.length dot > 0 && String.sub dot 0 7 = "digraph")
  | None -> Alcotest.fail "no plan"

let test_facade_execute_and_show_code () =
  let g = chain_graph () in
  let hdfs = default_hdfs () in
  match Musketeer.execute m ~workflow:"facade" ~hdfs g with
  | Error e -> Alcotest.fail (Engines.Report.error_to_string e)
  | Ok (result, plan) ->
    Alcotest.(check bool) "produced output" true
      (List.mem_assoc "out" result.Musketeer.Executor.outputs);
    let sources = Musketeer.show_code ~graph:g plan in
    Alcotest.(check bool) "rendered code per job" true
      (List.length sources = List.length plan.Musketeer.Partitioner.jobs)

(* random small workflow graphs for partitioning invariants *)
let gen_stages = QCheck.list_of_size (QCheck.Gen.int_range 1 6) (QCheck.int_range 0 4)

let graph_of_stages stages =
  let b = Ir.Builder.create () in
  let h = ref (Ir.Builder.input b "r") in
  List.iteri
    (fun i stage ->
       h :=
         match stage with
         | 0 ->
           let t = 5 * i in
           Ir.Builder.select b ~pred:Expr.(col "v" > int t) !h
         | 1 -> Ir.Builder.map b ~target:"w" ~expr:Expr.(col "v" + int i) !h
         | 2 -> Ir.Builder.distinct b !h
         | 3 ->
           Ir.Builder.group_by b ~keys:[ "k" ]
             ~aggs:[ Aggregate.make (Aggregate.Max "v") ~as_name:"v" ]
             !h
         | _ -> Ir.Builder.project b ~columns:[ "k"; "v" ] !h)
    stages;
  Ir.Builder.finish b ~outputs:[ !h ]

let prop_plans_partition_the_operators =
  QCheck.Test.make ~name:"plans partition the operator set" ~count:40
    gen_stages (fun stages ->
      let g = graph_of_stages stages in
      let est = estimator_for (default_hdfs ()) g in
      let op_ids =
        List.filter_map
          (fun (n : Ir.Operator.node) ->
             match n.kind with
             | Ir.Operator.Input _ -> None
             | _ -> Some n.id)
          g.Ir.Operator.nodes
      in
      let check_plan = function
        | None -> false
        | Some (plan : Musketeer.Partitioner.plan) ->
          let covered =
            List.sort compare
              (List.concat_map snd plan.Musketeer.Partitioner.jobs)
          in
          covered = List.sort compare op_ids
          && List.for_all
               (fun (backend, ids) ->
                  Musketeer.Support.check_bool backend g ids)
               plan.Musketeer.Partitioner.jobs
      in
      check_plan (Musketeer.Partitioner.exhaustive ~profile ~est ~backends g)
      && check_plan (Musketeer.Partitioner.dynamic ~profile ~est ~backends g))

let prop_dynamic_cost_not_below_exhaustive =
  QCheck.Test.make ~name:"exhaustive optimum <= dynamic" ~count:30 gen_stages
    (fun stages ->
      let g = graph_of_stages stages in
      let est = estimator_for (default_hdfs ()) g in
      match
        ( Musketeer.Partitioner.exhaustive ~profile ~est ~backends g,
          Musketeer.Partitioner.dynamic ~profile ~est ~backends g )
      with
      | Some e, Some d ->
        e.Musketeer.Partitioner.cost_s
        <= d.Musketeer.Partitioner.cost_s +. 1e-6
      | _ -> false)

(* end-to-end: whatever the planner decides, the executed outputs must
   equal the reference interpreter's on random pipelines *)
let prop_execute_equals_interp =
  QCheck.Test.make ~name:"planned execution = reference interpreter"
    ~count:25 gen_stages (fun stages ->
      let g = graph_of_stages stages in
      let rows = List.init 120 (fun i -> (i mod 9, i * 5 mod 230)) in
      let hdfs = hdfs_with [ ("r", kv_table rows, 512.) ] in
      let store = Ir.Interp.store_of_list [ ("r", kv_table rows) ] in
      let expected = snd (List.hd (Ir.Interp.outputs ~store g)) in
      match
        Musketeer.execute
          (Musketeer.with_history m (Musketeer.History.create ()))
          ~workflow:"prop" ~hdfs g
      with
      | Error _ -> false
      | Ok (result, _) -> (
        match result.Musketeer.Executor.outputs with
        | [ (_, actual) ] -> Table.equal_unordered expected actual
        | _ -> false))

let prop_history_roundtrip =
  QCheck.Test.make ~name:"history serialization round-trips" ~count:60
    (QCheck.list_of_size (QCheck.Gen.int_range 0 20)
       (QCheck.pair (QCheck.int_range 0 50) (QCheck.float_range 0. 1e6)))
    (fun entries ->
      let h = Musketeer.History.create () in
      List.iter
        (fun (node_id, output_mb) ->
           Musketeer.History.record h ~workflow:"w" ~node_id ~output_mb)
        entries;
      let h' = Musketeer.History.of_string (Musketeer.History.to_string h) in
      List.for_all
        (fun (node_id, _) ->
           match
             ( Musketeer.History.lookup h ~workflow:"w" ~node_id,
               Musketeer.History.lookup h' ~workflow:"w" ~node_id )
           with
           | Some a, Some b -> Float.abs (a -. b) < 1e-3
           | None, None -> true
           | _ -> false)
        entries)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_optimizer_preserves_semantics;
      prop_plans_partition_the_operators;
      prop_dynamic_cost_not_below_exhaustive;
      prop_execute_equals_interp;
      prop_history_roundtrip ]

let () =
  Alcotest.run "core"
    [ ( "profile",
        [ Alcotest.test_case "all backends" `Quick
            test_profile_covers_all_backends;
          Alcotest.test_case "relative overheads" `Quick
            test_profile_relative_overheads;
          Alcotest.test_case "naiad iteration" `Quick
            test_profile_naiad_iterates_cheaply ] );
      ( "history",
        [ Alcotest.test_case "store" `Quick test_history;
          Alcotest.test_case "persistence" `Quick test_history_persistence ] );
      ( "estimator",
        [ Alcotest.test_case "defaults and history" `Quick
            test_estimator_defaults_and_history;
          Alcotest.test_case "conservative joins" `Quick
            test_estimator_conservative_joins;
          Alcotest.test_case "iterations" `Quick test_estimator_iterations ] );
      ("support", [ Alcotest.test_case "rules" `Quick test_support_rules ]);
      ( "cost",
        [ Alcotest.test_case "finite ordering" `Quick
            test_cost_finite_and_ordering;
          Alcotest.test_case "infeasible paradigm" `Quick
            test_cost_infeasible_paradigm;
          Alcotest.test_case "conservative first run" `Quick
            test_cost_conservative_first_run ] );
      ( "partitioner",
        [ Alcotest.test_case "merges chain" `Quick test_partitioner_merges_chain;
          Alcotest.test_case "exhaustive = memoized" `Quick
            test_exhaustive_equals_memoized;
          Alcotest.test_case "exhaustive <= dynamic" `Quick
            test_exhaustive_not_worse_than_dynamic;
          Alcotest.test_case "no merging" `Quick test_no_merging_one_job_per_op;
          Alcotest.test_case "forced backend" `Quick test_forced_backend;
          Alcotest.test_case "fig16 multi-order" `Quick
            test_fig16_multi_order_not_worse ] );
      ( "jobgraph",
        [ Alcotest.test_case "extract runs" `Quick test_jobgraph_extract_runs;
          Alcotest.test_case "mapping" `Quick test_jobgraph_mapping;
          Alcotest.test_case "rejects non-convex" `Quick
            test_jobgraph_rejects_nonconvex ] );
      ( "optimizer",
        [ Alcotest.test_case "select through join" `Quick
            test_optimizer_select_through_join;
          Alcotest.test_case "fuses selects" `Quick test_optimizer_fuses_selects;
          Alcotest.test_case "dead elimination" `Quick
            test_optimizer_dead_elimination;
          Alcotest.test_case "distinct/difference push-down" `Quick
            test_optimizer_select_through_distinct_and_difference;
          Alcotest.test_case "column pruning" `Quick test_column_pruning;
          Alcotest.test_case "pruning respects set ops" `Quick
            test_column_pruning_respects_set_ops ] );
      ( "extensions",
        [ Alcotest.test_case "extended backends plan" `Quick
            test_extended_backends_plannable;
          Alcotest.test_case "dot export" `Quick test_dag_to_dot ] );
      ( "idiom",
        [ Alcotest.test_case "detects pagerank" `Quick
            test_idiom_detects_pagerank;
          Alcotest.test_case "rejects kmeans" `Quick test_idiom_rejects_kmeans;
          Alcotest.test_case "sound not complete" `Quick
            test_idiom_soundness_not_completeness;
          Alcotest.test_case "self-join heuristic" `Quick
            test_idiom_repeated_self_join;
          Alcotest.test_case "associativity" `Quick test_idiom_associativity ] );
      ( "codegen",
        [ Alcotest.test_case "pass counts" `Quick test_codegen_pass_counts;
          Alcotest.test_case "spark residual" `Quick
            test_codegen_spark_residual_pass;
          Alcotest.test_case "listing 3 vs 4" `Quick test_codegen_listing_3_vs_4;
          Alcotest.test_case "renders all" `Quick
            test_codegen_renders_all_backends ] );
      ( "executor",
        [ Alcotest.test_case "matches interp" `Quick test_executor_matches_interp;
          Alcotest.test_case "while expansion" `Quick
            test_executor_while_expansion_equivalence;
          Alcotest.test_case "records history" `Quick
            test_executor_records_history;
          Alcotest.test_case "cross-engine combo" `Quick
            test_executor_cross_engine_combo ] );
      ( "mapper",
        [ Alcotest.test_case "decision tree" `Quick test_decision_tree_branches ] );
      ( "facade",
        [ Alcotest.test_case "execute + show_code" `Quick
            test_facade_execute_and_show_code;
          Alcotest.test_case "explain" `Quick test_explain_report ] );
      ("properties", qcheck_cases) ]
