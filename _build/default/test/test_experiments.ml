(* Shape tests for the experiment harness: each reproduced figure must
   exhibit the paper's qualitative result (who wins, roughly by what
   factor, where crossovers fall) — the acceptance criteria recorded in
   EXPERIMENTS.md. *)

let ok = function
  | Ok s -> s
  | Error e -> Alcotest.fail e

let assoc name rows = ok (List.assoc name rows)

(* ---------------- Figure 2 ---------------- *)

let test_fig2a_crossover () =
  (* Metis wins small inputs; Hadoop wins at 32 GB; Lindi is worst at
     scale; Spark trails Hadoop at scale (no data re-use) *)
  let small = Experiments.Fig2_micro.project_makespans ~size_mb:128. in
  let metis = assoc "Metis" small in
  List.iter
    (fun (name, r) ->
       if name <> "Metis" then
         Alcotest.(check bool) ("Metis beats " ^ name ^ " at 128MB") true
           (metis < ok r))
    small;
  let large = Experiments.Fig2_micro.project_makespans ~size_mb:32768. in
  let hadoop = assoc "Hadoop" large in
  Alcotest.(check bool) "Hadoop beats Spark at 32GB" true
    (hadoop < assoc "Spark" large);
  Alcotest.(check bool) "Hadoop beats Metis at 32GB" true
    (hadoop < assoc "Metis" large);
  Alcotest.(check bool) "Lindi I/O-bound at 32GB" true
    (assoc "Lindi" large > 2. *. hadoop)

let test_fig2b_winners () =
  let asym = Experiments.Fig2_micro.join_makespans ~symmetric:false in
  let c = assoc "C" asym in
  List.iter
    (fun (name, r) ->
       if name <> "C" then
         Alcotest.(check bool) ("C beats " ^ name ^ " on asymmetric join")
           true (c <= ok r))
    asym;
  let sym = Experiments.Fig2_micro.join_makespans ~symmetric:true in
  let hadoop = assoc "Hadoop" sym in
  List.iter
    (fun (name, r) ->
       if name <> "Hadoop" && name <> "Hive" then
         Alcotest.(check bool)
           ("Hadoop beats " ^ name ^ " on symmetric join")
           true (hadoop <= ok r))
    sym

(* ---------------- Figure 7 ---------------- *)

let test_fig7_speedups () =
  let hive, musketeer, lindi = Experiments.Fig7_tpch.series ~scale_factor:100 in
  let hive = ok hive and musketeer = ok musketeer and lindi = ok lindi in
  Alcotest.(check bool) "Musketeer ~2x over Hive/Hadoop" true
    (hive /. musketeer >= 1.8);
  Alcotest.(check bool) "Musketeer 6-12x over stock Lindi" true
    (lindi /. musketeer >= 6. && lindi /. musketeer <= 12.)

(* ---------------- Figure 8 ---------------- *)

let test_fig8_musketeer_tracks_best () =
  List.iter
    (fun nodes ->
       match
         Experiments.Fig8_pagerank_mapping.at_scale
           ~spec:Workloads.Datagen.twitter nodes
       with
       | None -> Alcotest.fail "scale failed"
       | Some r ->
         Alcotest.(check bool)
           (Printf.sprintf "within 30%% of best at %d nodes" nodes)
           true
           (r.Experiments.Fig8_pagerank_mapping.musketeer_s
            <= 1.3 *. r.Experiments.Fig8_pagerank_mapping.best_s))
    [ 1; 16; 100 ]

(* ---------------- Figure 9 ---------------- *)

let test_fig9_combination_wins () =
  let rows = Experiments.Fig9_cross_community.makespans () in
  let get name = ok (List.assoc name rows) in
  let single_naiad = get "Lindi only" in
  let one_job = get "Lindi & GraphLINQ (one Naiad job)" in
  Alcotest.(check bool) "avoiding cross-phase I/O wins" true
    (one_job < single_naiad);
  Alcotest.(check bool) "combos beat Hadoop-only" true
    (get "Hadoop + PowerGraph" < get "Hadoop only")

(* ---------------- Figure 10 ---------------- *)

let test_fig10_overhead_bounds () =
  List.iter
    (fun (_, backend) ->
       match Experiments.Fig10_netflix_overhead.overhead ~movies:8000 ~backend with
       | Error e -> Alcotest.fail e
       | Ok (_, _, pct) ->
         Alcotest.(check bool) "overhead within 0..30%" true
           (pct >= -5. && pct <= 30.))
    Experiments.Fig10_netflix_overhead.backends

(* ---------------- Figure 13 ---------------- *)

let test_fig13_exponential_vs_linear () =
  let rows =
    Experiments.Fig13_partitioning.measurements ~max_ops:14 ~budget_s:10. ()
  in
  let exh x =
    match List.find (fun (ops, _, _, _) -> ops = x) rows with
    | _, Some s, _, _ -> s
    | _ -> Alcotest.fail "exhaustive skipped"
  and dyn x =
    match List.find (fun (ops, _, _, _) -> ops = x) rows with
    | _, _, _, s -> s
  in
  Alcotest.(check bool) "exhaustive blows up" true
    (exh 14 > 20. *. exh 8);
  Alcotest.(check bool) "dynamic stays fast at 14 ops" true
    (dyn 14 < 0.25);
  Alcotest.(check bool) "dynamic beats exhaustive at size" true
    (dyn 14 < exh 14)

(* ---------------- Figure 15 ---------------- *)

let test_fig15_choices () =
  let sssp_backends, sssp_choice =
    Experiments.Fig15_new_workflows.study ~workflow:"sssp"
      ~hdfs:(Experiments.Common.load_sssp ())
      ~graph:(Workloads.Workflows.sssp ~max_rounds:8 ())
  in
  Alcotest.(check bool) "SSSP choice is Naiad" true
    (String.length sssp_choice >= 5 && String.sub sssp_choice 0 5 = "Naiad");
  let naiad = ok (List.assoc "Naiad" sssp_backends) in
  List.iter
    (fun (name, r) ->
       match r with
       | Ok s when name <> "Naiad" ->
         Alcotest.(check bool) ("Naiad beats " ^ name) true (naiad <= s)
       | _ -> ())
    sssp_backends;
  let kmeans_backends, kmeans_choice =
    Experiments.Fig15_new_workflows.study ~workflow:"kmeans"
      ~hdfs:(Experiments.Common.load_kmeans ~points:100_000_000 ~k:100)
      ~graph:(Workloads.Workflows.kmeans ~iterations:5 ())
  in
  Alcotest.(check bool) "k-means choice is Naiad" true
    (String.length kmeans_choice >= 5 && String.sub kmeans_choice 0 5 = "Naiad");
  (match List.assoc "Spark" kmeans_backends with
   | Error msg ->
     Alcotest.(check bool) "Spark OOMs on k-means" true
       (String.length msg >= 3)
   | Ok _ -> Alcotest.fail "Spark should OOM on the CROSS JOIN");
  (match List.assoc "PowerGraph" kmeans_backends with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "PowerGraph cannot express k-means")

(* ---------------- table formatting ---------------- *)

let test_table_rendering () =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Experiments.Common.table ppf ~title:"t" ~header:[ "a"; "b" ]
    [ [ "1"; "2" ]; [ "333"; "4" ] ];
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  let contains hay needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length hay
      && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "title present" true (contains s "== t ==")

let () =
  Alcotest.run "experiments"
    [ ( "fig2",
        [ Alcotest.test_case "2a crossover" `Slow test_fig2a_crossover;
          Alcotest.test_case "2b winners" `Slow test_fig2b_winners ] );
      ("fig7", [ Alcotest.test_case "speedups" `Slow test_fig7_speedups ]);
      ( "fig8",
        [ Alcotest.test_case "tracks best" `Slow
            test_fig8_musketeer_tracks_best ] );
      ( "fig9",
        [ Alcotest.test_case "combination wins" `Slow
            test_fig9_combination_wins ] );
      ( "fig10",
        [ Alcotest.test_case "overhead bounds" `Slow
            test_fig10_overhead_bounds ] );
      ( "fig13",
        [ Alcotest.test_case "exponential vs linear" `Slow
            test_fig13_exponential_vs_linear ] );
      ("fig15", [ Alcotest.test_case "choices" `Slow test_fig15_choices ]);
      ( "format",
        [ Alcotest.test_case "table" `Quick test_table_rendering ] ) ]
