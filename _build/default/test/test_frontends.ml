(* Tests for the front-end layer: lexer, expression parser, BEER, the
   HiveQL subset, the GAS DSL translation, and the Lindi combinators —
   including cross-front-end equivalence (the same workflow written in
   two languages computes identical results through the interpreter). *)

open Relation

let kv_schema =
  Schema.make [ { Schema.name = "k"; ty = Value.Tint };
                { Schema.name = "v"; ty = Value.Tint } ]

let kv_table rows =
  Table.create kv_schema
    (List.map (fun (k, v) -> [| Value.Int k; Value.Int v |]) rows)

let run_graph graph bindings =
  Ir.Interp.outputs ~store:(Ir.Interp.store_of_list bindings) graph

let last_output graph bindings = snd (List.hd (run_graph graph bindings))

(* ---------------- Lexer ---------------- *)

let test_lexer_tokens () =
  let tokens =
    List.map (fun t -> t.Frontends.Lexer.token)
      (Frontends.Lexer.tokenize "SELECT a.b, 42 1.5 'hi' <= != -- note\nx")
  in
  Alcotest.(check bool) "kinds" true
    (tokens
     = [ Frontends.Lexer.Ident "SELECT"; Frontends.Lexer.Qualified ("a", "b");
         Frontends.Lexer.Punct ","; Frontends.Lexer.Int_lit 42;
         Frontends.Lexer.Float_lit 1.5; Frontends.Lexer.String_lit "hi";
         Frontends.Lexer.Punct "<="; Frontends.Lexer.Punct "!=";
         Frontends.Lexer.Ident "x"; Frontends.Lexer.Eof ])

let test_lexer_hash_inside_string () =
  (* '#' starts a comment, except inside string literals *)
  let tokens =
    List.map (fun t -> t.Frontends.Lexer.token)
      (Frontends.Lexer.tokenize "'Brand#23' # trailing comment")
  in
  Alcotest.(check bool) "string preserved" true
    (tokens = [ Frontends.Lexer.String_lit "Brand#23"; Frontends.Lexer.Eof ])

let test_lexer_line_numbers () =
  let tokens = Frontends.Lexer.tokenize "a\nb\n  c" in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3; 3 ]
    (List.map (fun t -> t.Frontends.Lexer.line) tokens)

let test_lexer_error () =
  (try
     ignore (Frontends.Lexer.tokenize "a ? b");
     Alcotest.fail "expected Lex_error"
   with Frontends.Lexer.Lex_error (_, 1) -> ())

(* ---------------- expression parser ---------------- *)

let parse_expr s = Frontends.Parse_state.expr (Frontends.Parse_state.of_string s)

let test_expr_precedence () =
  let schema =
    Schema.make [ { Schema.name = "a"; ty = Value.Tint };
                  { Schema.name = "b"; ty = Value.Tint } ]
  in
  let eval e a b = Expr.eval schema [| Value.Int a; Value.Int b |] e in
  (* * binds tighter than + *)
  Alcotest.(check int) "a + b * 2" 21
    (Value.to_int (eval (parse_expr "a + b * 2") 1 10));
  (* comparison below arithmetic; AND below comparison *)
  Alcotest.(check bool) "a + 1 > b and b < 5" true
    (Value.equal (eval (parse_expr "a + 1 > b AND b < 5") 3 2)
       (Value.Bool true));
  (* OR weaker than AND *)
  Alcotest.(check bool) "false and false or true" true
    (Value.equal
       (eval (parse_expr "a > 99 AND b > 99 OR a = 3") 3 2)
       (Value.Bool true));
  (* parentheses *)
  Alcotest.(check int) "(a + b) * 2" 10
    (Value.to_int (eval (parse_expr "(a + b) * 2") 2 3))

let test_expr_unary_minus_and_qualified () =
  let schema = Schema.make [ { Schema.name = "x"; ty = Value.Tint } ] in
  Alcotest.(check int) "-5 + x" (-3)
    (Value.to_int (Expr.eval schema [| Value.Int 2 |] (parse_expr "-5 + x")));
  Alcotest.(check int) "rel.x resolves to column" 2
    (Value.to_int (Expr.eval schema [| Value.Int 2 |] (parse_expr "t.x")))

(* ---------------- BEER ---------------- *)

let purchases_rows =
  [ (1, 700); (1, 600); (2, 100); (2, 50); (3, 2000) ]

let test_beer_select_group () =
  let g =
    Frontends.Beer.parse
      "spend = SELECT k, SUM(v) AS total FROM purchases GROUP BY k;\n\
       big = SELECT k, total FROM spend WHERE total > 1000;\n\
       OUTPUT big;\n"
  in
  let out = last_output g [ ("purchases", kv_table purchases_rows) ] in
  Alcotest.(check int) "two big spenders" 2 (Table.row_count out)

let test_beer_rename () =
  let g =
    Frontends.Beer.parse
      "renamed = SELECT k AS id, MAX(v) AS best FROM r GROUP BY k;\n\
       OUTPUT renamed;\n"
  in
  let out = last_output g [ ("r", kv_table purchases_rows) ] in
  Alcotest.(check (list string)) "renamed columns" [ "id"; "best" ]
    (Schema.column_names (Table.schema out))

let test_beer_join_union_distinct_top () =
  let g =
    Frontends.Beer.parse
      "j = a JOIN b ON k = k;\n\
       u = a UNION b;\n\
       d = DISTINCT u;\n\
       t = TOP 2 OF d BY v;\n\
       OUTPUT t;\n"
  in
  let bindings =
    [ ("a", kv_table [ (1, 5); (2, 9) ]); ("b", kv_table [ (1, 5); (3, 7) ]) ]
  in
  let out = last_output g bindings in
  Alcotest.(check int) "top 2" 2 (Table.row_count out);
  Alcotest.(check int) "largest v first" 9 (Value.to_int (Table.get out 0 "v"))

let test_beer_semi_anti_join () =
  let g =
    Frontends.Beer.parse
      "s = a SEMIJOIN b ON k = k;\n\
       t = a ANTIJOIN b ON k = k;\n\
       u = s UNION t;\n\
       OUTPUT u;\n"
  in
  let a = kv_table [ (1, 5); (2, 9); (3, 7) ]
  and b = kv_table [ (1, 0) ] in
  let out = last_output g [ ("a", a); ("b", b) ] in
  Alcotest.(check bool) "semi + anti rebuild the left side" true
    (Table.equal_unordered a out)

let test_lindi_left_outer_join () =
  let q =
    Frontends.Lindi.left_outer_join ~on:("k", "k")
      ~defaults:[ Value.Int (-1) ]
      (Frontends.Lindi.read "a")
      (Frontends.Lindi.read "b")
  in
  let g = Frontends.Lindi.finish ~name:"out" q in
  let out =
    last_output g
      [ ("a", kv_table [ (1, 5); (2, 9) ]); ("b", kv_table [ (1, 100) ]) ]
  in
  Alcotest.(check int) "both left rows" 2 (Table.row_count out);
  let sorted = Table.sort_by out [ "k" ] in
  Alcotest.(check int) "default fills unmatched" (-1)
    (Value.to_int (Table.get sorted 1 "r_v"))

let test_beer_while_iteration () =
  let g =
    Frontends.Beer.parse
      "acc = INPUT 'seed';\n\
       WHILE (ITERATION < 3) {\n\
       \  acc = MAP acc SET v = v + 1;\n\
       }\n\
       OUTPUT acc;\n"
  in
  let out = last_output g [ ("seed", kv_table [ (1, 0) ]) ] in
  Alcotest.(check int) "three increments" 3 (Value.to_int (Table.get out 0 "v"))

let test_beer_while_loop_carried_inference () =
  (* 'edges' is read-only, 'frontier' is carried *)
  let g = Workloads.Workflows.sssp ~max_rounds:30 () in
  let while_body =
    List.find_map
      (fun (n : Ir.Operator.node) ->
         match n.kind with
         | Ir.Operator.While { body; _ } -> Some body
         | _ -> None)
      g.Ir.Operator.nodes
    |> Option.get
  in
  Alcotest.(check (list string)) "carried" [ "dists" ]
    while_body.Ir.Operator.loop_carried

let test_beer_parse_errors () =
  let expect_error src =
    try
      ignore (Frontends.Beer.parse src);
      Alcotest.fail "expected Parse_error"
    with Frontends.Beer.Parse_error _ -> ()
  in
  expect_error "x = SELECT FROM r;";
  expect_error "x = r JOIN;";
  expect_error "WHILE (ITERATION < 2) { y = MAP r SET v = v + 1; }";
  (* WHILE must re-bind something it reads *)
  expect_error "= broken"

(* ---------------- Hive ---------------- *)

let test_hive_listing1 () =
  (* the paper's max-property-price workflow (Listing 1) *)
  let properties =
    Table.create
      (Schema.make
         [ { Schema.name = "id"; ty = Value.Tint };
           { Schema.name = "street"; ty = Value.Tstring };
           { Schema.name = "town"; ty = Value.Tstring } ])
      [ [| Value.Int 1; Value.Str "king st"; Value.Str "cambridge" |];
        [| Value.Int 2; Value.Str "king st"; Value.Str "cambridge" |];
        [| Value.Int 3; Value.Str "mill rd"; Value.Str "cambridge" |] ]
  and prices =
    Table.create
      (Schema.make
         [ { Schema.name = "pid"; ty = Value.Tint };
           { Schema.name = "price"; ty = Value.Tint } ])
      [ [| Value.Int 1; Value.Int 100 |]; [| Value.Int 2; Value.Int 350 |];
        [| Value.Int 3; Value.Int 200 |] ]
  in
  let g =
    Frontends.Hive.parse
      "SELECT id, street, town FROM properties AS locs;\n\
       locs JOIN prices ON locs.id = prices.pid AS id_price;\n\
       SELECT street, town, MAX(price) AS max_price FROM id_price \
       GROUP BY street AND town AS street_price;\n"
  in
  let out =
    last_output g [ ("properties", properties); ("prices", prices) ]
  in
  let sorted = Table.sort_by out [ "street" ] in
  Alcotest.(check int) "two streets" 2 (Table.row_count out);
  Alcotest.(check int) "king st max" 350
    (Value.to_int (Table.get sorted 0 "max_price"));
  Alcotest.(check int) "mill rd max" 200
    (Value.to_int (Table.get sorted 1 "max_price"))

let test_hive_where_and_setops () =
  let g =
    Frontends.Hive.parse
      "SELECT k, v FROM a WHERE v > 5 AS big;\n\
       big UNION b AS all_rows;\n\
       all_rows INTERSECT b AS common;\n"
  in
  let out =
    last_output g
      [ ("a", kv_table [ (1, 10); (2, 3) ]); ("b", kv_table [ (1, 10); (9, 9) ]) ]
  in
  Alcotest.(check int) "intersect" 2 (Table.row_count out)

let test_hive_having () =
  let g =
    Frontends.Hive.parse
      "SELECT k, SUM(v) AS total FROM r GROUP BY k HAVING total > 50 \
       AS big;\n"
  in
  let out =
    last_output g [ ("r", kv_table [ (1, 60); (1, 10); (2, 5) ]) ]
  in
  Alcotest.(check int) "one group over 50" 1 (Table.row_count out);
  Alcotest.(check int) "group 1" 1 (Value.to_int (Table.get out 0 "k"))

let test_hive_parse_errors () =
  (try
     ignore (Frontends.Hive.parse "SELECT a FROM r");  (* missing AS *)
     Alcotest.fail "expected Parse_error"
   with Frontends.Hive.Parse_error _ -> ())

(* cross-front-end equivalence: top-shopper in BEER vs Hive *)
let test_beer_hive_equivalence () =
  let purchases =
    Table.create
      (Schema.make
         [ { Schema.name = "uid"; ty = Value.Tint };
           { Schema.name = "region"; ty = Value.Tstring };
           { Schema.name = "amount"; ty = Value.Tint } ])
      (List.init 60 (fun i ->
           [| Value.Int (i mod 6);
              Value.Str (if i mod 2 = 0 then "EU" else "US");
              Value.Int (i * 37 mod 500) |]))
  in
  let beer = Workloads.Workflows.top_shopper () in
  let hive =
    Frontends.Hive.parse
      "SELECT uid, SUM(amount) AS total FROM purchases \
       WHERE region = 'EU' GROUP BY uid AS spend;\n\
       SELECT uid, total FROM spend WHERE total > 1000 AS big_spenders;\n"
  in
  Alcotest.(check bool) "identical results" true
    (Table.equal_unordered
       (last_output beer [ ("purchases", purchases) ])
       (last_output hive [ ("purchases", purchases) ]))

(* ---------------- GAS ---------------- *)

let test_gas_parse_listing2 () =
  let p =
    Frontends.Gas.parse (Workloads.Workflows.pagerank_gas_source ~iterations:20)
  in
  Alcotest.(check int) "iterations" 20 p.Frontends.Gas.iterations;
  Alcotest.(check bool) "gather sum" true
    (p.Frontends.Gas.gather = Frontends.Gas.Gather_sum);
  Alcotest.(check int) "two apply steps" 2
    (List.length p.Frontends.Gas.apply);
  Alcotest.(check int) "one scatter step" 1
    (List.length p.Frontends.Gas.scatter)

(* hand-computed PageRank on a 3-vertex cycle: by symmetry all ranks
   stay exactly 1.0 under the 0.15 + 0.85 * sum(rank/degree) update *)
let test_gas_pagerank_semantics () =
  let vertices =
    Table.create
      (Schema.make
         [ { Schema.name = "id"; ty = Value.Tint };
           { Schema.name = "vertex_value"; ty = Value.Tfloat };
           { Schema.name = "vertex_degree"; ty = Value.Tint } ])
      [ [| Value.Int 0; Value.Float 1.; Value.Int 1 |];
        [| Value.Int 1; Value.Float 1.; Value.Int 1 |];
        [| Value.Int 2; Value.Float 1.; Value.Int 1 |] ]
  and edges =
    Table.create
      (Schema.make
         [ { Schema.name = "src"; ty = Value.Tint };
           { Schema.name = "dst"; ty = Value.Tint } ])
      [ [| Value.Int 0; Value.Int 1 |]; [| Value.Int 1; Value.Int 2 |];
        [| Value.Int 2; Value.Int 0 |] ]
  in
  let g = Workloads.Workflows.pagerank_gas ~iterations:4 () in
  let out =
    last_output g [ ("vertices", vertices); ("edges", edges) ]
  in
  Alcotest.(check int) "all vertices kept" 3 (Table.row_count out);
  Array.iter
    (fun row ->
       Alcotest.(check (float 1e-9)) "rank stays 1 on a cycle" 1.
         (Value.to_float row.(1)))
    (Table.rows out)

let test_gas_dangling_vertex_gets_base_rank () =
  (* vertex 2 has no in-edges: after one iteration its rank must be the
     0.15 base, not disappear *)
  let vertices =
    Table.create
      (Schema.make
         [ { Schema.name = "id"; ty = Value.Tint };
           { Schema.name = "vertex_value"; ty = Value.Tfloat };
           { Schema.name = "vertex_degree"; ty = Value.Tint } ])
      [ [| Value.Int 0; Value.Float 1.; Value.Int 1 |];
        [| Value.Int 1; Value.Float 1.; Value.Int 1 |];
        [| Value.Int 2; Value.Float 1.; Value.Int 1 |] ]
  and edges =
    Table.create
      (Schema.make
         [ { Schema.name = "src"; ty = Value.Tint };
           { Schema.name = "dst"; ty = Value.Tint } ])
      [ [| Value.Int 0; Value.Int 1 |]; [| Value.Int 1; Value.Int 0 |];
        [| Value.Int 2; Value.Int 0 |] ]
  in
  let g = Workloads.Workflows.pagerank_gas ~iterations:1 () in
  let out = last_output g [ ("vertices", vertices); ("edges", edges) ] in
  let sorted = Table.sort_by out [ "id" ] in
  Alcotest.(check int) "all vertices kept" 3 (Table.row_count out);
  Alcotest.(check (float 1e-9)) "dangling vertex at base rank" 0.15
    (Value.to_float (Table.get sorted 2 "vertex_value"))

let test_gas_errors () =
  let expect_error src =
    try
      ignore (Frontends.Gas.parse src);
      Alcotest.fail "expected Parse_error"
    with Frontends.Gas.Parse_error _ -> ()
  in
  expect_error "GATHER = { SUM (vertex_value) }";  (* no ITERATION_STOP *)
  expect_error "ITERATION_STOP = (iteration < 5)";  (* no GATHER *)
  expect_error "GATHER = { FOO (vertex_value) } ITERATION_STOP = (iteration < 5)"

(* ---------------- Pig ---------------- *)

let test_pig_aggregation_idiom () =
  let purchases =
    Table.create
      (Schema.make
         [ { Schema.name = "uid"; ty = Value.Tint };
           { Schema.name = "region"; ty = Value.Tstring };
           { Schema.name = "amount"; ty = Value.Tint } ])
      [ [| Value.Int 1; Value.Str "EU"; Value.Int 800 |];
        [| Value.Int 1; Value.Str "EU"; Value.Int 400 |];
        [| Value.Int 2; Value.Str "US"; Value.Int 5000 |];
        [| Value.Int 3; Value.Str "EU"; Value.Int 100 |] ]
  in
  let g =
    Frontends.Pig.parse
      "purchases = LOAD 'purchases';\n\
       eu = FILTER purchases BY region == 'EU';\n\
       by_user = GROUP eu BY uid;\n\
       spend = FOREACH by_user GENERATE group, SUM(amount) AS total;\n\
       big = FILTER spend BY total > 1000;\n\
       STORE big INTO 'big_spenders';\n"
  in
  let out = last_output g [ ("purchases", purchases) ] in
  Alcotest.(check int) "one big spender" 1 (Table.row_count out);
  Alcotest.(check int) "user 1" 1 (Value.to_int (Table.get out 0 "uid"));
  (* equivalent to the BEER top-shopper *)
  let beer = Workloads.Workflows.top_shopper () in
  Alcotest.(check bool) "pig = beer" true
    (Table.equal_unordered out (last_output beer [ ("purchases", purchases) ]))

let test_pig_foreach_generate () =
  let g =
    Frontends.Pig.parse
      "r = LOAD 'r';\n\
       doubled = FOREACH r GENERATE k, v AS amount, v * 2 AS twice;\n"
  in
  let out = last_output g [ ("r", kv_table [ (1, 10); (2, 20) ]) ] in
  Alcotest.(check (list string)) "generated shape" [ "k"; "amount"; "twice" ]
    (Schema.column_names (Table.schema out));
  let sorted = Table.sort_by out [ "k" ] in
  Alcotest.(check int) "computed column" 20
    (Value.to_int (Table.get sorted 0 "twice"))

let test_pig_join_order_limit () =
  let g =
    Frontends.Pig.parse
      "a = LOAD 'a';\n\
       b = LOAD 'b';\n\
       j = JOIN a BY k, b BY k;\n\
       sorted = ORDER j BY v DESC;\n\
       top = LIMIT sorted 2;\n\
       STORE top INTO 'top';\n"
  in
  let bindings =
    [ ("a", kv_table [ (1, 5); (2, 9); (3, 7) ]);
      ("b", kv_table [ (1, 0); (2, 0); (3, 0) ]) ]
  in
  let out = last_output g bindings in
  Alcotest.(check int) "limited" 2 (Table.row_count out);
  Alcotest.(check int) "largest v first" 9 (Value.to_int (Table.get out 0 "v"))

let test_pig_errors () =
  let expect_error src =
    try
      ignore (Frontends.Pig.parse src);
      Alcotest.fail "expected Parse_error"
    with Frontends.Pig.Parse_error _ -> ()
  in
  (* aggregating an ungrouped relation *)
  expect_error "r = LOAD 'r';\nx = FOREACH r GENERATE group, SUM(v);\n";
  (* using a grouped relation as plain *)
  expect_error "r = LOAD 'r';\ng = GROUP r BY k;\nx = FILTER g BY v > 1;\n";
  (* LIMIT without ORDER *)
  expect_error "r = LOAD 'r';\nx = LIMIT r 5;\n";
  (* unknown relation *)
  expect_error "x = FILTER nope BY v > 1;\n"

(* ---------------- Lindi ---------------- *)

let test_lindi_pipeline () =
  let q =
    Frontends.Lindi.read "purchases"
    |> Frontends.Lindi.where Expr.(col "v" > int 99)
    |> Frontends.Lindi.group_by ~keys:[ "k" ]
         ~aggs:[ Aggregate.make (Aggregate.Sum "v") ~as_name:"total" ]
  in
  let g = Frontends.Lindi.finish ~name:"spend" q in
  let out = last_output g [ ("purchases", kv_table purchases_rows) ] in
  Alcotest.(check int) "groups over 99" 3 (Table.row_count out)

let test_lindi_shared_subquery () =
  (* a let-bound query used twice elaborates to a single node *)
  let base = Frontends.Lindi.read "r" in
  let left = Frontends.Lindi.where Expr.(col "v" > int 1) base in
  let q = Frontends.Lindi.join ~on:("k", "k") left base in
  let g = Frontends.Lindi.finish ~name:"out" q in
  let inputs =
    List.filter
      (fun (n : Ir.Operator.node) ->
         match n.kind with Ir.Operator.Input _ -> true | _ -> false)
      g.Ir.Operator.nodes
  in
  Alcotest.(check int) "one shared input node" 1 (List.length inputs)

let test_lindi_iterate () =
  let q =
    Frontends.Lindi.iterate ~carrying:[ "acc" ] ~iterations:4
      [ ("acc", Frontends.Lindi.read "seed") ]
      (fun ref_ ->
         [ ("acc",
            Frontends.Lindi.map ~target:"v"
              Expr.(col "v" + int 10)
              (ref_ "acc")) ])
  in
  let g = Frontends.Lindi.finish ~name:"final" q in
  let out = last_output g [ ("seed", kv_table [ (1, 0) ]) ] in
  Alcotest.(check int) "4 iterations of +10" 40
    (Value.to_int (Table.get out 0 "v"))

let test_lindi_equivalent_to_beer () =
  let beer =
    Frontends.Beer.parse
      "out = SELECT k, v FROM r WHERE v > 50;\nOUTPUT out;\n"
  in
  let lindi =
    Frontends.Lindi.finish ~name:"out"
      (Frontends.Lindi.read "r"
       |> Frontends.Lindi.where Expr.(col "v" > int 50)
       |> Frontends.Lindi.select [ "k"; "v" ])
  in
  let bindings = [ ("r", kv_table purchases_rows) ] in
  Alcotest.(check bool) "lindi = beer" true
    (Table.equal_unordered
       (last_output beer bindings)
       (last_output lindi bindings))

(* ---------------- properties ---------------- *)

let prop_beer_select_equals_kernel =
  QCheck.Test.make ~name:"BEER WHERE = kernel select" ~count:50
    (QCheck.int_range 0 300) (fun threshold ->
      let rows = List.init 80 (fun i -> (i mod 8, i * 7 mod 400)) in
      let src =
        Printf.sprintf
          "out = SELECT k, v FROM r WHERE v > %d;\nOUTPUT out;\n" threshold
      in
      let g = Frontends.Beer.parse src in
      let t = kv_table rows in
      Table.equal_unordered
        (last_output g [ ("r", t) ])
        (Kernel.select t Expr.(col "v" > int threshold)))

let prop_gas_iterations_reflected =
  QCheck.Test.make ~name:"GAS iteration bound round-trips" ~count:20
    (QCheck.int_range 1 30) (fun n ->
      let p =
        Frontends.Gas.parse (Workloads.Workflows.pagerank_gas_source ~iterations:n)
      in
      p.Frontends.Gas.iterations = n)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_beer_select_equals_kernel; prop_gas_iterations_reflected ]

let () =
  Alcotest.run "frontends"
    [ ( "lexer",
        [ Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "hash in string" `Quick
            test_lexer_hash_inside_string;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
          Alcotest.test_case "error" `Quick test_lexer_error ] );
      ( "expr",
        [ Alcotest.test_case "precedence" `Quick test_expr_precedence;
          Alcotest.test_case "unary/qualified" `Quick
            test_expr_unary_minus_and_qualified ] );
      ( "beer",
        [ Alcotest.test_case "select/group" `Quick test_beer_select_group;
          Alcotest.test_case "rename" `Quick test_beer_rename;
          Alcotest.test_case "join/union/distinct/top" `Quick
            test_beer_join_union_distinct_top;
          Alcotest.test_case "semi/anti join" `Quick test_beer_semi_anti_join;
          Alcotest.test_case "while iteration" `Quick test_beer_while_iteration;
          Alcotest.test_case "loop-carried inference" `Quick
            test_beer_while_loop_carried_inference;
          Alcotest.test_case "parse errors" `Quick test_beer_parse_errors ] );
      ( "hive",
        [ Alcotest.test_case "listing 1" `Quick test_hive_listing1;
          Alcotest.test_case "where/setops" `Quick test_hive_where_and_setops;
          Alcotest.test_case "having" `Quick test_hive_having;
          Alcotest.test_case "parse errors" `Quick test_hive_parse_errors;
          Alcotest.test_case "beer equivalence" `Quick
            test_beer_hive_equivalence ] );
      ( "gas",
        [ Alcotest.test_case "parse listing 2" `Quick test_gas_parse_listing2;
          Alcotest.test_case "pagerank semantics" `Quick
            test_gas_pagerank_semantics;
          Alcotest.test_case "dangling vertex" `Quick
            test_gas_dangling_vertex_gets_base_rank;
          Alcotest.test_case "errors" `Quick test_gas_errors ] );
      ( "pig",
        [ Alcotest.test_case "aggregation idiom" `Quick
            test_pig_aggregation_idiom;
          Alcotest.test_case "foreach generate" `Quick
            test_pig_foreach_generate;
          Alcotest.test_case "join/order/limit" `Quick
            test_pig_join_order_limit;
          Alcotest.test_case "errors" `Quick test_pig_errors ] );
      ( "lindi",
        [ Alcotest.test_case "pipeline" `Quick test_lindi_pipeline;
          Alcotest.test_case "shared subquery" `Quick
            test_lindi_shared_subquery;
          Alcotest.test_case "iterate" `Quick test_lindi_iterate;
          Alcotest.test_case "left outer join" `Quick
            test_lindi_left_outer_join;
          Alcotest.test_case "beer equivalence" `Quick
            test_lindi_equivalent_to_beer ] );
      ("properties", qcheck_cases) ]
