(* Tests for the workload layer: data generators (determinism, schemas,
   modeled sizes, structural invariants) and the workflow zoo's
   semantics (reference implementations in plain OCaml). *)

open Relation

let last_output graph bindings =
  snd
    (List.hd
       (Ir.Interp.outputs ~store:(Ir.Interp.store_of_list bindings) graph))

(* ---------------- generators ---------------- *)

let test_generators_deterministic () =
  let a = Workloads.Datagen.purchases ~users:1_000_000 ()
  and b = Workloads.Datagen.purchases ~users:1_000_000 () in
  Alcotest.(check bool) "same tables" true
    (Table.equal_unordered a.Workloads.Datagen.table b.Workloads.Datagen.table);
  Alcotest.(check (float 1e-9)) "same modeled size"
    a.Workloads.Datagen.modeled_mb b.Workloads.Datagen.modeled_mb

let test_two_column_ascii () =
  let s = Workloads.Datagen.two_column_ascii ~modeled_mb:4096. () in
  Alcotest.(check (float 1e-9)) "modeled size honoured" 4096.
    s.Workloads.Datagen.modeled_mb;
  Alcotest.(check (list string)) "schema" [ "key"; "value" ]
    (Schema.column_names (Table.schema s.Workloads.Datagen.table))

let test_graph_tables_invariants () =
  let edges, vertices =
    Workloads.Datagen.graph_tables ~sample_vertices:120
      Workloads.Datagen.orkut ~edges:()
  in
  let et = edges.Workloads.Datagen.table
  and vt = vertices.Workloads.Datagen.table in
  Alcotest.(check int) "vertex count" 120 (Table.row_count vt);
  (* vertex_degree matches the actual out-degree in the edge table *)
  let out_deg = Hashtbl.create 128 in
  Array.iter
    (fun row ->
       let src = Value.to_int row.(0) in
       Hashtbl.replace out_deg src
         (1 + Option.value (Hashtbl.find_opt out_deg src) ~default:0))
    (Table.rows et);
  Array.iter
    (fun row ->
       let id = Value.to_int row.(0)
       and deg = Value.to_int row.(2) in
       let actual = Option.value (Hashtbl.find_opt out_deg id) ~default:0 in
       Alcotest.(check int) "degree column correct" (max 1 actual) deg)
    (Table.rows vt);
  (* every edge endpoint is a valid vertex id *)
  Array.iter
    (fun row ->
       let src = Value.to_int row.(0) and dst = Value.to_int row.(1) in
       Alcotest.(check bool) "endpoints in range" true
         (src >= 0 && src < 120 && dst >= 0 && dst < 120))
    (Table.rows et);
  (* modeled sizes at paper scale *)
  Alcotest.(check bool) "orkut edges ~1.7GB modeled" true
    (edges.Workloads.Datagen.modeled_mb > 1000.
     && edges.Workloads.Datagen.modeled_mb < 3000.)

let test_community_pair_overlap () =
  let a, b = Workloads.Datagen.community_pair () in
  let inter =
    Kernel.intersect
      (Kernel.distinct a.Workloads.Datagen.table)
      (Kernel.distinct b.Workloads.Datagen.table)
  in
  Alcotest.(check bool) "communities overlap" true (Table.row_count inter > 50)

let test_tpch_tables () =
  let lineitem, part = Workloads.Datagen.tpch ~scale_factor:10 () in
  Alcotest.(check (float 1.)) "7.5 GB at SF 10" 7500.
    (lineitem.Workloads.Datagen.modeled_mb +. part.Workloads.Datagen.modeled_mb);
  Alcotest.(check (list string)) "lineitem schema"
    [ "l_partkey"; "l_quantity"; "l_extendedprice" ]
    (Schema.column_names (Table.schema lineitem.Workloads.Datagen.table))

let test_netflix_scaling () =
  let small, _ = Workloads.Datagen.netflix ~movies:4000 ()
  and large, _ = Workloads.Datagen.netflix ~movies:17000 () in
  Alcotest.(check bool) "ratings volume grows with movie count" true
    (large.Workloads.Datagen.modeled_mb > small.Workloads.Datagen.modeled_mb)

let test_kmeans_points () =
  let pts, cents = Workloads.Datagen.kmeans_points ~points:1000 ~k:7 () in
  Alcotest.(check int) "k centroids" 7
    (Table.row_count cents.Workloads.Datagen.table);
  (* pids are unique *)
  let d = Kernel.distinct (Kernel.project pts.Workloads.Datagen.table [ "pid" ]) in
  Alcotest.(check int) "unique pids" (Table.row_count pts.Workloads.Datagen.table)
    (Table.row_count d)

(* ---------------- CSV loader ---------------- *)

let write_temp contents =
  let file = Filename.temp_file "musketeer_csv" ".csv" in
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc contents);
  file

let test_csv_loader_roundtrip () =
  let file = write_temp "# comment\n1,EU,800\n2,US,50\n\n3,EU,900\n" in
  let name, sized =
    Workloads.Csv_loader.parse_binding
      (Printf.sprintf "purchases=%s:uid:int,region:string,amount:int@2048"
         file)
  in
  Sys.remove file;
  Alcotest.(check string) "name" "purchases" name;
  Alcotest.(check int) "rows (comments and blanks skipped)" 3
    (Table.row_count sized.Workloads.Datagen.table);
  Alcotest.(check (float 1e-9)) "modeled override" 2048.
    sized.Workloads.Datagen.modeled_mb;
  Alcotest.(check (list string)) "schema" [ "uid"; "region"; "amount" ]
    (Schema.column_names (Table.schema sized.Workloads.Datagen.table))

let test_csv_loader_errors () =
  let expect_bad f =
    try
      ignore (f ());
      Alcotest.fail "expected Bad_spec"
    with Workloads.Csv_loader.Bad_spec _ -> ()
  in
  expect_bad (fun () -> Workloads.Csv_loader.parse_schema "uid");
  expect_bad (fun () -> Workloads.Csv_loader.parse_schema "uid:intish");
  expect_bad (fun () -> Workloads.Csv_loader.parse_binding "nopath");
  let file = write_temp "1,2\n1\n" in
  expect_bad (fun () ->
      Workloads.Csv_loader.load_csv
        ~schema:(Workloads.Csv_loader.parse_schema "a:int,b:int")
        file);
  Sys.remove file

(* ---------------- workflow semantics ---------------- *)

let test_top_shopper_semantics () =
  let purchases =
    Table.create
      (Schema.make
         [ { Schema.name = "uid"; ty = Value.Tint };
           { Schema.name = "region"; ty = Value.Tstring };
           { Schema.name = "amount"; ty = Value.Tint } ])
      [ [| Value.Int 1; Value.Str "EU"; Value.Int 800 |];
        [| Value.Int 1; Value.Str "EU"; Value.Int 400 |];
        [| Value.Int 2; Value.Str "US"; Value.Int 5000 |];
        [| Value.Int 3; Value.Str "EU"; Value.Int 100 |] ]
  in
  let out =
    last_output (Workloads.Workflows.top_shopper ())
      [ ("purchases", purchases) ]
  in
  (* only user 1 spends > 1000 within the EU *)
  Alcotest.(check int) "one big spender" 1 (Table.row_count out);
  Alcotest.(check int) "user 1" 1 (Value.to_int (Table.get out 0 "uid"))

(* SSSP must equal a textbook Dijkstra on the sampled graph *)
let test_sssp_against_dijkstra () =
  let edges, seeds =
    Workloads.Datagen.sssp_tables ~sample_vertices:60
      Workloads.Datagen.twitter ()
  in
  let et = edges.Workloads.Datagen.table in
  let n = 60 in
  let adj = Array.make n [] in
  Array.iter
    (fun row ->
       let src = Value.to_int row.(0)
       and dst = Value.to_int row.(1)
       and w = Value.to_int row.(2) in
       adj.(src) <- (dst, w) :: adj.(src))
    (Table.rows et);
  (* O(V^2) Dijkstra from vertex 0 *)
  let dist = Array.make n max_int in
  dist.(0) <- 0;
  let visited = Array.make n false in
  for _ = 1 to n do
    let u = ref (-1) in
    for v = 0 to n - 1 do
      if (not visited.(v)) && dist.(v) < max_int
         && (!u = -1 || dist.(v) < dist.(!u)) then u := v
    done;
    if !u >= 0 then begin
      visited.(!u) <- true;
      List.iter
        (fun (v, w) ->
           if dist.(!u) + w < dist.(v) then dist.(v) <- dist.(!u) + w)
        adj.(!u)
    end
  done;
  let out =
    last_output
      (Workloads.Workflows.sssp ~max_rounds:100 ())
      [ ("sssp_edges", et); ("sssp_seeds", seeds.Workloads.Datagen.table) ]
  in
  Array.iter
    (fun row ->
       let node = Value.to_int row.(0) and cost = Value.to_int row.(1) in
       Alcotest.(check int)
         (Printf.sprintf "distance to %d" node)
         dist.(node) cost)
    (Table.rows out);
  (* every reachable vertex is present *)
  let reachable = Array.to_list dist |> List.filter (fun d -> d < max_int) in
  Alcotest.(check int) "all reachable vertices" (List.length reachable)
    (Table.row_count out)

let test_kmeans_converges_to_k_or_fewer () =
  let pts, cents = Workloads.Datagen.kmeans_points ~points:400 ~k:5 () in
  let out =
    last_output
      (Workloads.Workflows.kmeans ~iterations:4 ())
      [ ("points", pts.Workloads.Datagen.table);
        ("centroids", cents.Workloads.Datagen.table) ]
  in
  Alcotest.(check bool) "at most k centroids" true (Table.row_count out <= 5);
  Alcotest.(check bool) "at least one centroid" true (Table.row_count out >= 1);
  Alcotest.(check (list string)) "schema stable" [ "cid"; "cx"; "cy" ]
    (Schema.column_names (Table.schema out))

(* connected components: symmetric edges + self-loops; compare against
   a union-find reference *)
let test_connected_components_against_union_find () =
  let n = 24 in
  let state = Random.State.make [| 77 |] in
  let undirected =
    List.init 20 (fun _ ->
        (Random.State.int state n, Random.State.int state n))
  in
  let edges_list =
    List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) undirected
    @ List.init n (fun i -> (i, i))
  in
  let edge_schema =
    Schema.make [ { Schema.name = "src"; ty = Value.Tint };
                  { Schema.name = "dst"; ty = Value.Tint } ]
  and vertex_schema =
    Schema.make
      [ { Schema.name = "id"; ty = Value.Tint };
        { Schema.name = "vertex_value"; ty = Value.Tfloat };
        { Schema.name = "vertex_degree"; ty = Value.Tint } ]
  in
  let edges =
    Table.create edge_schema
      (List.map (fun (a, b) -> [| Value.Int a; Value.Int b |]) edges_list)
  in
  let vertices =
    Table.create vertex_schema
      (List.init n (fun i ->
           [| Value.Int i; Value.Float (float_of_int i); Value.Int 1 |]))
  in
  (* union-find reference *)
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  List.iter
    (fun (a, b) ->
       let ra = find a and rb = find b in
       if ra <> rb then parent.(max ra rb) <- min ra rb)
    undirected;
  let expected_label i =
    (* smallest vertex id in i's component *)
    let root = find i in
    List.fold_left min n
      (List.filteri (fun j _ -> find j = root) (List.init n (fun j -> j)))
  in
  let out =
    last_output
      (Workloads.Workflows.connected_components ~iterations:n ())
      [ ("vertices", vertices); ("edges", edges) ]
  in
  Alcotest.(check int) "all vertices labelled" n (Table.row_count out);
  Array.iter
    (fun row ->
       let id = Value.to_int row.(0)
       and label = int_of_float (Value.to_float row.(1)) in
       Alcotest.(check int)
         (Printf.sprintf "component label of %d" id)
         (expected_label id) label)
    (Table.rows out)

let test_netflix_recommends_rated_movies () =
  let ratings, movies = Workloads.Datagen.netflix ~movies:1000 () in
  let out =
    last_output (Workloads.Workflows.netflix ())
      [ ("ratings", ratings.Workloads.Datagen.table);
        ("movies", movies.Workloads.Datagen.table) ]
  in
  Alcotest.(check bool) "nonempty" true (Table.row_count out > 0);
  Alcotest.(check (list string)) "schema" [ "user"; "r_movie" ]
    (Schema.column_names (Table.schema out))

let test_cross_community_runs () =
  let a, b = Workloads.Datagen.community_pair ~sample_vertices:80 () in
  let out =
    last_output
      (Workloads.Workflows.cross_community_pagerank ~iterations:2 ())
      [ ("edges_a", a.Workloads.Datagen.table);
        ("edges_b", b.Workloads.Datagen.table) ]
  in
  Alcotest.(check bool) "ranks computed" true (Table.row_count out > 0);
  Array.iter
    (fun row ->
       Alcotest.(check bool) "positive ranks" true
         (Value.to_float row.(1) > 0.))
    (Table.rows out)

let test_operator_counts () =
  Alcotest.(check bool) "netflix is a large workflow" true
    (Ir.Dag.operator_count (Workloads.Workflows.netflix ()) >= 13);
  Alcotest.(check bool) "extended netflix has 18+ operators" true
    (Ir.Dag.operator_count (Workloads.Workflows.netflix_extended ()) >= 18);
  Alcotest.(check int) "simple join is one operator" 1
    (Ir.Dag.operator_count (Workloads.Workflows.simple_join ()))

(* ---------------- properties ---------------- *)

let prop_pagerank_ranks_bounded =
  QCheck.Test.make ~name:"pagerank ranks stay in (0, n)" ~count:10
    (QCheck.int_range 20 100) (fun n ->
      let edges, vertices =
        Workloads.Datagen.graph_tables ~sample_vertices:n ~seed:n
          Workloads.Datagen.orkut ~edges:()
      in
      let out =
        last_output
          (Workloads.Workflows.pagerank_gas ~iterations:3 ())
          [ ("edges", edges.Workloads.Datagen.table);
            ("vertices", vertices.Workloads.Datagen.table) ]
      in
      Table.row_count out = n
      && Array.for_all
           (fun row ->
              let r = Value.to_float row.(1) in
              r > 0. && r < float_of_int n)
           (Table.rows out))

let prop_sssp_costs_nonnegative_and_monotone =
  QCheck.Test.make ~name:"sssp costs nonnegative" ~count:10
    (QCheck.int_range 20 80) (fun n ->
      let edges, seeds =
        Workloads.Datagen.sssp_tables ~sample_vertices:n ~seed:n
          Workloads.Datagen.twitter ()
      in
      let out =
        last_output
          (Workloads.Workflows.sssp ~max_rounds:200 ())
          [ ("sssp_edges", edges.Workloads.Datagen.table);
            ("sssp_seeds", seeds.Workloads.Datagen.table) ]
      in
      Array.for_all
        (fun row -> Value.to_int row.(1) >= 0)
        (Table.rows out))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pagerank_ranks_bounded; prop_sssp_costs_nonnegative_and_monotone ]

let () =
  Alcotest.run "workloads"
    [ ( "datagen",
        [ Alcotest.test_case "deterministic" `Quick
            test_generators_deterministic;
          Alcotest.test_case "two-column ascii" `Quick test_two_column_ascii;
          Alcotest.test_case "graph invariants" `Quick
            test_graph_tables_invariants;
          Alcotest.test_case "community overlap" `Quick
            test_community_pair_overlap;
          Alcotest.test_case "tpch" `Quick test_tpch_tables;
          Alcotest.test_case "netflix scaling" `Quick test_netflix_scaling;
          Alcotest.test_case "kmeans points" `Quick test_kmeans_points ] );
      ( "csv_loader",
        [ Alcotest.test_case "roundtrip" `Quick test_csv_loader_roundtrip;
          Alcotest.test_case "errors" `Quick test_csv_loader_errors ] );
      ( "workflows",
        [ Alcotest.test_case "top shopper" `Quick test_top_shopper_semantics;
          Alcotest.test_case "sssp = dijkstra" `Quick
            test_sssp_against_dijkstra;
          Alcotest.test_case "kmeans" `Quick test_kmeans_converges_to_k_or_fewer;
          Alcotest.test_case "connected components" `Quick
            test_connected_components_against_union_find;
          Alcotest.test_case "netflix" `Quick
            test_netflix_recommends_rated_movies;
          Alcotest.test_case "cross community" `Quick test_cross_community_runs;
          Alcotest.test_case "operator counts" `Quick test_operator_counts ] );
      ("properties", qcheck_cases) ]
