test/test_workloads.ml: Alcotest Array Filename Hashtbl Ir Kernel List Option Out_channel Printf QCheck QCheck_alcotest Random Relation Schema Sys Table Value Workloads
