test/test_relation.ml: Aggregate Alcotest Array Expr Format Kernel List QCheck QCheck_alcotest Relation Schema Stdlib String Table Value
