test/test_frontends.mli:
