test/test_engines.ml: Aggregate Alcotest Engines Expr Float Ir List QCheck QCheck_alcotest Relation Schema Table Value Workloads
