test/test_frontends.ml: Aggregate Alcotest Array Expr Frontends Ir Kernel List Option Printf QCheck QCheck_alcotest Relation Schema Table Value Workloads
