test/test_core.ml: Aggregate Alcotest Buffer Engines Expr Filename Float Format Hashtbl Ir List Musketeer Option QCheck QCheck_alcotest Relation Schema String Sys Table Value Workloads
