test/test_ir.ml: Aggregate Alcotest Array Engines Expr Hashtbl Ir Kernel List QCheck QCheck_alcotest Relation Schema String Table Value
