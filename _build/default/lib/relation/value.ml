type ty =
  | Tint
  | Tfloat
  | Tstring
  | Tbool

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

let type_of = function
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Str _ -> Tstring
  | Bool _ -> Tbool

let ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tbool -> "bool"

let type_rank = function
  | Tint -> 0
  | Tfloat -> 1
  | Tstring -> 2
  | Tbool -> 3

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Int _ | Float _ | Str _ | Bool _), _ ->
    Int.compare (type_rank (type_of a)) (type_rank (type_of b))

let equal a b = compare a b = 0

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Bool true -> 1.
  | Bool false -> 0.
  | Str s ->
    (match float_of_string_opt s with
     | Some f -> f
     | None -> invalid_arg (Printf.sprintf "Value.to_float: %S" s))

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | Bool true -> 1
  | Bool false -> 0
  | Str s ->
    (match int_of_string_opt s with
     | Some i -> i
     | None -> invalid_arg (Printf.sprintf "Value.to_int: %S" s))

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Str s -> s
  | Bool b -> string_of_bool b

let parse ty s =
  match ty with
  | Tint ->
    (match int_of_string_opt s with
     | Some i -> Int i
     | None -> invalid_arg (Printf.sprintf "Value.parse int: %S" s))
  | Tfloat ->
    (match float_of_string_opt s with
     | Some f -> Float f
     | None -> invalid_arg (Printf.sprintf "Value.parse float: %S" s))
  | Tstring -> Str s
  | Tbool ->
    (match bool_of_string_opt s with
     | Some b -> Bool b
     | None -> invalid_arg (Printf.sprintf "Value.parse bool: %S" s))

let encoded_size = function
  | Int _ -> 8
  | Float _ -> 8
  | Str s -> String.length s + 1
  | Bool _ -> 1

let pp ppf v = Format.pp_print_string ppf (to_string v)

let pp_ty ppf ty = Format.pp_print_string ppf (ty_to_string ty)
