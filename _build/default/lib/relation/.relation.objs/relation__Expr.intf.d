lib/relation/expr.mli: Format Schema Value
