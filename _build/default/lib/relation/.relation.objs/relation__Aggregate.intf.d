lib/relation/aggregate.mli: Format Value
