lib/relation/table.ml: Array Buffer Format List Printf Schema String Value
