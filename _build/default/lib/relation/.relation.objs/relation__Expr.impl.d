lib/relation/expr.ml: Array Float Format Hashtbl List Printf Schema Stdlib Value
