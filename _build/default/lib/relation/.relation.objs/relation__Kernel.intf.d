lib/relation/kernel.mli: Aggregate Expr Table Value
