lib/relation/aggregate.ml: Format Printf Value
