lib/relation/kernel.ml: Aggregate Array Expr Hashtbl List Option Printf Random Schema Seq Table Value
