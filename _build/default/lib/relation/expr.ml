type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod

type cmpop =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Col of string
  | Const of Value.t
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | If of t * t * t

let col c = Col c
let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let str s = Const (Value.Str s)
let bool b = Const (Value.Bool b)

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( = ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Neq, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let not_ a = Not a

let columns e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Col c ->
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        acc := c :: !acc
      end
    | Const _ -> ()
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Not a -> go a
    | If (c, a, b) ->
      go c;
      go a;
      go b
  in
  go e;
  List.rev !acc

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let rec infer schema e =
  match e with
  | Col c ->
    (try Schema.column_type schema c
     with Not_found -> type_error "unknown column %S" c)
  | Const v -> Value.type_of v
  | Binop (op, a, b) -> infer_binop schema op a b
  | Cmp (_, a, b) ->
    let ta = infer schema a and tb = infer schema b in
    if comparable ta tb then Value.Tbool
    else
      type_error "cannot compare %s with %s" (Value.ty_to_string ta)
        (Value.ty_to_string tb)
  | And (a, b) | Or (a, b) ->
    check_bool schema a;
    check_bool schema b;
    Value.Tbool
  | Not a ->
    check_bool schema a;
    Value.Tbool
  | If (c, a, b) ->
    check_bool schema c;
    let ta = infer schema a and tb = infer schema b in
    unify_numeric_or_equal ta tb

and infer_binop schema op a b =
  let ta = infer schema a and tb = infer schema b in
  match ta, tb, op with
  | Value.Tstring, Value.Tstring, Add -> Value.Tstring
  | (Value.Tint | Value.Tfloat), (Value.Tint | Value.Tfloat), _ ->
    if Stdlib.( || )
         (Stdlib.( = ) ta Value.Tfloat)
         (Stdlib.( = ) tb Value.Tfloat)
    then Value.Tfloat
    else Value.Tint
  | _ ->
    type_error "arithmetic on %s and %s" (Value.ty_to_string ta)
      (Value.ty_to_string tb)

and comparable ta tb =
  match ta, tb with
  | (Value.Tint | Value.Tfloat), (Value.Tint | Value.Tfloat) -> true
  | a, b -> Stdlib.( = ) a b

and unify_numeric_or_equal ta tb =
  match ta, tb with
  | Value.Tint, Value.Tfloat | Value.Tfloat, Value.Tint -> Value.Tfloat
  | a, b when Stdlib.( = ) a b -> a
  | a, b ->
    type_error "branches have types %s and %s" (Value.ty_to_string a)
      (Value.ty_to_string b)

and check_bool schema e =
  match infer schema e with
  | Value.Tbool -> ()
  | ty -> type_error "expected bool, got %s" (Value.ty_to_string ty)

let eval_binop op va vb =
  match va, vb with
  | Value.Str a, Value.Str b when Stdlib.( = ) op Add -> Value.Str (a ^ b)
  | Value.Int a, Value.Int b -> (
    match op with
    | Add -> Value.Int (Stdlib.( + ) a b)
    | Sub -> Value.Int (Stdlib.( - ) a b)
    | Mul -> Value.Int (Stdlib.( * ) a b)
    | Div -> Value.Int (Stdlib.( / ) a b)
    | Mod -> Value.Int (Stdlib.( mod ) a b))
  | _ ->
    let a = Value.to_float va and b = Value.to_float vb in
    (match op with
     | Add -> Value.Float (a +. b)
     | Sub -> Value.Float (a -. b)
     | Mul -> Value.Float (a *. b)
     | Div -> Value.Float (if Stdlib.( = ) b 0. then 0. else a /. b)
     | Mod -> Value.Float (Float.rem a b))

let eval_cmp op va vb =
  let c = Value.compare va vb in
  match op with
  | Eq -> Stdlib.( = ) c 0
  | Neq -> Stdlib.( <> ) c 0
  | Lt -> Stdlib.( < ) c 0
  | Le -> Stdlib.( <= ) c 0
  | Gt -> Stdlib.( > ) c 0
  | Ge -> Stdlib.( >= ) c 0

let compile schema e =
  let rec go = function
    | Col c ->
      let i =
        try Schema.index_of schema c
        with Not_found -> type_error "unknown column %S" c
      in
      fun row -> row.(i)
    | Const v -> fun _ -> v
    | Binop (op, a, b) ->
      let fa = go a and fb = go b in
      fun row -> eval_binop op (fa row) (fb row)
    | Cmp (op, a, b) ->
      let fa = go a and fb = go b in
      fun row -> Value.Bool (eval_cmp op (fa row) (fb row))
    | And (a, b) ->
      let fa = go a and fb = go b in
      fun row ->
        Value.Bool
          (Stdlib.( && ) (as_bool (fa row)) (as_bool (fb row)))
    | Or (a, b) ->
      let fa = go a and fb = go b in
      fun row ->
        Value.Bool
          (Stdlib.( || ) (as_bool (fa row)) (as_bool (fb row)))
    | Not a ->
      let fa = go a in
      fun row -> Value.Bool (not (as_bool (fa row)))
    | If (c, a, b) ->
      let fc = go c and fa = go a and fb = go b in
      fun row -> if as_bool (fc row) then fa row else fb row
  and as_bool = function
    | Value.Bool b -> b
    | v -> type_error "expected bool, got %s" (Value.to_string v)
  in
  go e

let eval schema row e = compile schema e row

let eval_bool schema row e =
  match eval schema row e with
  | Value.Bool b -> b
  | v -> type_error "predicate evaluated to %s" (Value.to_string v)

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let cmpop_symbol = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp ppf = function
  | Col c -> Format.pp_print_string ppf c
  | Const v -> Value.pp ppf v
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (binop_symbol op) pp b
  | Cmp (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (cmpop_symbol op) pp b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp a
  | If (c, a, b) ->
    Format.fprintf ppf "(IF %a THEN %a ELSE %a)" pp c pp a pp b

let to_string e = Format.asprintf "%a" pp e

let equal (a : t) (b : t) = Stdlib.( = ) a b
