type column = {
  name : string;
  ty : Value.ty;
}

type t = {
  cols : column array;
  (* name -> index, built once; schemas are small so an assoc list would
     do, but lookups sit on the per-row hot path of expression eval. *)
  index : (string, int) Hashtbl.t;
}

let build cols =
  let index = Hashtbl.create (List.length cols) in
  List.iteri
    (fun i c ->
       if Hashtbl.mem index c.name then
         invalid_arg (Printf.sprintf "Schema.make: duplicate column %S" c.name);
       Hashtbl.add index c.name i)
    cols;
  { cols = Array.of_list cols; index }

let make cols =
  if cols = [] then invalid_arg "Schema.make: empty schema";
  build cols

let columns t = Array.to_list t.cols

let arity t = Array.length t.cols

let index_of t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> raise Not_found

let mem t name = Hashtbl.mem t.index name

let column_type t name = t.cols.(index_of t name).ty

let column_names t = List.map (fun c -> c.name) (columns t)

let restrict t names =
  make (List.map (fun n -> t.cols.(index_of t n)) names)

let rename_prefixed t ~prefix =
  make
    (List.map (fun c -> { c with name = prefix ^ "." ^ c.name }) (columns t))

let concat a b =
  let clash name = mem a name in
  let rename c = if clash c.name then { c with name = "r_" ^ c.name } else c in
  make (columns a @ List.map rename (columns b))

let with_column t col =
  if mem t col.name then
    make
      (List.map (fun c -> if c.name = col.name then col else c) (columns t))
  else make (columns t @ [ col ])

let equal a b =
  arity a = arity b
  && List.for_all2
       (fun ca cb -> ca.name = cb.name && ca.ty = cb.ty)
       (columns a) (columns b)

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf c -> Format.fprintf ppf "%s:%a" c.name Value.pp_ty c.ty))
    (columns t)

let to_string t = Format.asprintf "%a" pp t
