(** Row-level expressions: predicates for SELECT and the column-algebra
    bodies of Musketeer's SUM/SUB/MUL/DIV operators and the GAS DSL's
    APPLY step.

    Expressions are typed against a {!Schema.t} before evaluation; the
    same inference drives the code generator's look-ahead optimization
    (paper §4.3.4). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod

type cmpop =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Col of string                 (** column reference by name *)
  | Const of Value.t
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | If of t * t * t               (** conditional expression *)

val col : string -> t
val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t

(** Columns referenced by the expression, without duplicates, in first-use
    order. The IR optimizer uses this for projection push-down. *)
val columns : t -> string list

exception Type_error of string

(** [infer schema e] is the result type of [e] over rows of [schema].
    Numeric binops yield [Tfloat] if either side is a float, else [Tint];
    comparisons and boolean connectives yield [Tbool].
    Raises {!Type_error} on ill-typed expressions or unknown columns. *)
val infer : Schema.t -> t -> Value.ty

(** [eval schema row e] evaluates [e] against one row. Division by zero
    yields [Float 0.] for floats (mirrors the PageRank dangling-node
    convention used by the paper's GAS example) and raises
    [Division_by_zero] for ints. *)
val eval : Schema.t -> Value.t array -> t -> Value.t

(** [eval_bool] specializes {!eval} to predicates.
    Raises {!Type_error} when the expression is not boolean. *)
val eval_bool : Schema.t -> Value.t array -> t -> bool

(** [compile schema e] resolves column indices once and returns a closure
    for per-row evaluation; semantics are those of {!eval}. *)
val compile : Schema.t -> t -> Value.t array -> Value.t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool
