(** Scalar values stored in relation cells.

    Musketeer's IR is loosely relational; cells hold one of four scalar
    types. Comparison follows SQL-ish semantics: values of the same type
    compare naturally, and [Int] / [Float] compare numerically across the
    two types so that front-ends may mix them freely. *)

type ty =
  | Tint
  | Tfloat
  | Tstring
  | Tbool

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val type_of : t -> ty

val ty_to_string : ty -> string

(** Total order used by sorting, grouping and set operators. [Int] and
    [Float] are compared numerically; other cross-type comparisons order
    by type tag. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Numeric view of a value: [Int] and [Float] convert directly; [Bool]
    maps to 0/1. Raises [Invalid_argument] on strings that do not parse
    as numbers. *)
val to_float : t -> float

val to_int : t -> int

(** [to_string] prints the value the way the CSV layer stores it. *)
val to_string : t -> string

(** [parse ty s] reads a value of type [ty] from its CSV representation.
    Raises [Invalid_argument] when [s] does not parse. *)
val parse : ty -> string -> t

(** Size in bytes the value occupies in the simulated on-disk encoding
    (used to derive modeled data volumes). *)
val encoded_size : t -> int

val pp : Format.formatter -> t -> unit

val pp_ty : Format.formatter -> ty -> unit
