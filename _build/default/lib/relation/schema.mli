(** Relation schemas: an ordered list of named, typed columns.

    Column names are significant — the IR wires operators together by
    column name, and the code generator's look-ahead type inference
    (paper §4.3.4) works over these schemas. *)

type column = {
  name : string;
  ty : Value.ty;
}

type t

(** [make cols] builds a schema. Raises [Invalid_argument] on duplicate
    column names or an empty column list. *)
val make : column list -> t

val columns : t -> column list

val arity : t -> int

(** [index_of t name] is the position of column [name].
    Raises [Not_found] when absent. *)
val index_of : t -> string -> int

val mem : t -> string -> bool

val column_type : t -> string -> Value.ty

val column_names : t -> string list

(** [restrict t names] keeps only [names], in the given order. Raises
    [Not_found] if any name is absent. *)
val restrict : t -> string list -> t

(** [rename t ~prefix] prefixes every column name with [prefix ^ "."],
    used to disambiguate join outputs. *)
val rename_prefixed : t -> prefix:string -> t

(** [concat a b] appends the columns of [b] to [a]. Columns of [b] whose
    names clash with [a] get a ["r_"] prefix, mirroring how generated
    back-end code flattens join outputs. *)
val concat : t -> t -> t

(** [with_column t col] appends one column; replaces in place when a
    column of the same name already exists (keeping its position). *)
val with_column : t -> column -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
