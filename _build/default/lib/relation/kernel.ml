let select t pred =
  let schema = Table.schema t in
  let f = Expr.compile schema pred in
  let keep row =
    match f row with
    | Value.Bool b -> b
    | v ->
      raise
        (Expr.Type_error
           (Printf.sprintf "SELECT predicate returned %s" (Value.to_string v)))
  in
  let rows =
    Array.of_seq (Seq.filter keep (Array.to_seq (Table.rows t)))
  in
  Table.create_unchecked schema rows

let project t cols =
  let schema = Table.schema t in
  let idxs = Array.of_list (List.map (Schema.index_of schema) cols) in
  let out_schema = Schema.restrict schema cols in
  let rows =
    Array.map (fun row -> Array.map (fun i -> row.(i)) idxs) (Table.rows t)
  in
  Table.create_unchecked out_schema rows

let map_column t ~target ~expr =
  let schema = Table.schema t in
  let ty = Expr.infer schema expr in
  let f = Expr.compile schema expr in
  let out_schema = Schema.with_column schema { Schema.name = target; ty } in
  let replace = Schema.mem schema target in
  let idx = if replace then Schema.index_of schema target else -1 in
  let transform row =
    let v = f row in
    if replace then begin
      let row' = Array.copy row in
      row'.(idx) <- v;
      row'
    end
    else Array.append row [| v |]
  in
  Table.create_unchecked out_schema (Array.map transform (Table.rows t))

let rename_column t ~from_ ~to_ =
  let schema = Table.schema t in
  let cols =
    List.map
      (fun (c : Schema.column) ->
         if c.name = from_ then { c with name = to_ } else c)
      (Schema.columns schema)
  in
  if not (Schema.mem schema from_) then raise Not_found;
  Table.create_unchecked (Schema.make cols) (Table.rows t)

let join left right ~left_key ~right_key =
  let ls = Table.schema left and rs = Table.schema right in
  let li = Schema.index_of ls left_key and ri = Schema.index_of rs right_key in
  (* right schema without its key column; a key-only right side adds
     nothing (semi-join) *)
  let r_cols_keep =
    List.filteri (fun j _ -> j <> ri) (Schema.columns rs)
  in
  let out_schema =
    if r_cols_keep = [] then ls
    else Schema.concat ls (Schema.make r_cols_keep)
  in
  let build = Hashtbl.create (max 16 (Table.row_count left)) in
  Array.iter
    (fun row -> Hashtbl.add build row.(li) row)
    (Table.rows left);
  let out = ref [] in
  let keep_idx =
    Array.of_list
      (List.filteri (fun j _ -> j <> ri)
         (List.mapi (fun j _ -> j) (Schema.columns rs)))
  in
  Array.iter
    (fun rrow ->
       let matches = Hashtbl.find_all build rrow.(ri) in
       List.iter
         (fun lrow ->
            let extra = Array.map (fun j -> rrow.(j)) keep_idx in
            out := Array.append lrow extra :: !out)
         matches)
    (Table.rows right);
  Table.create_unchecked out_schema (Array.of_list (List.rev !out))

let right_keep_info right ~right_key =
  let rs = Table.schema right in
  let ri = Schema.index_of rs right_key in
  let keep_cols = List.filteri (fun j _ -> j <> ri) (Schema.columns rs) in
  let keep_idx =
    Array.of_list
      (List.filteri (fun j _ -> j <> ri)
         (List.mapi (fun j _ -> j) (Schema.columns rs)))
  in
  (ri, keep_cols, keep_idx)

let left_outer_join left right ~left_key ~right_key ~defaults =
  let ls = Table.schema left in
  let li = Schema.index_of ls left_key in
  let ri, keep_cols, keep_idx = right_keep_info right ~right_key in
  if List.length defaults <> List.length keep_cols then
    invalid_arg
      (Printf.sprintf
         "Kernel.left_outer_join: %d defaults for %d right columns"
         (List.length defaults) (List.length keep_cols));
  List.iter2
    (fun v (c : Schema.column) ->
       if Value.type_of v <> c.ty then
         invalid_arg
           (Printf.sprintf
              "Kernel.left_outer_join: default for %s has type %s, \
               expected %s"
              c.name
              (Value.ty_to_string (Value.type_of v))
              (Value.ty_to_string c.ty)))
    defaults keep_cols;
  let out_schema =
    if keep_cols = [] then ls else Schema.concat ls (Schema.make keep_cols)
  in
  let matches = Hashtbl.create (max 16 (Table.row_count right)) in
  Array.iter
    (fun rrow -> Hashtbl.add matches rrow.(ri) rrow)
    (Table.rows right);
  let default_row = Array.of_list defaults in
  let out = ref [] in
  Array.iter
    (fun lrow ->
       match Hashtbl.find_all matches lrow.(li) with
       | [] -> out := Array.append lrow default_row :: !out
       | rrows ->
         List.iter
           (fun rrow ->
              let extra = Array.map (fun j -> rrow.(j)) keep_idx in
              out := Array.append lrow extra :: !out)
           rrows)
    (Table.rows left);
  Table.create_unchecked out_schema (Array.of_list (List.rev !out))

let key_membership right ~right_key =
  let ri = Schema.index_of (Table.schema right) right_key in
  let keys = Hashtbl.create (max 16 (Table.row_count right)) in
  Array.iter (fun rrow -> Hashtbl.replace keys rrow.(ri) ()) (Table.rows right);
  keys

let semi_join left right ~left_key ~right_key =
  let li = Schema.index_of (Table.schema left) left_key in
  let keys = key_membership right ~right_key in
  Table.create_unchecked (Table.schema left)
    (Array.of_seq
       (Seq.filter
          (fun lrow -> Hashtbl.mem keys lrow.(li))
          (Array.to_seq (Table.rows left))))

let anti_join left right ~left_key ~right_key =
  let li = Schema.index_of (Table.schema left) left_key in
  let keys = key_membership right ~right_key in
  Table.create_unchecked (Table.schema left)
    (Array.of_seq
       (Seq.filter
          (fun lrow -> not (Hashtbl.mem keys lrow.(li)))
          (Array.to_seq (Table.rows left))))

let cross_join left right =
  let out_schema = Schema.concat (Table.schema left) (Table.schema right) in
  let out = ref [] in
  Array.iter
    (fun lrow ->
       Array.iter
         (fun rrow -> out := Array.append lrow rrow :: !out)
         (Table.rows right))
    (Table.rows left);
  Table.create_unchecked out_schema (Array.of_list (List.rev !out))

let check_union_compatible a b =
  if not (Schema.equal (Table.schema a) (Table.schema b)) then
    invalid_arg
      (Printf.sprintf "Kernel: incompatible schemas %s vs %s"
         (Schema.to_string (Table.schema a))
         (Schema.to_string (Table.schema b)))

let union_all a b =
  check_union_compatible a b;
  Table.create_unchecked (Table.schema a)
    (Array.append (Table.rows a) (Table.rows b))

let distinct t =
  let seen = Hashtbl.create (max 16 (Table.row_count t)) in
  let out = ref [] in
  Array.iter
    (fun row ->
       if not (Hashtbl.mem seen row) then begin
         Hashtbl.add seen row ();
         out := row :: !out
       end)
    (Table.rows t);
  Table.create_unchecked (Table.schema t) (Array.of_list (List.rev !out))

let union a b = distinct (union_all a b)

let intersect a b =
  check_union_compatible a b;
  let in_b = Hashtbl.create (max 16 (Table.row_count b)) in
  Array.iter (fun row -> Hashtbl.replace in_b row ()) (Table.rows b);
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun row ->
       if Hashtbl.mem in_b row && not (Hashtbl.mem seen row) then begin
         Hashtbl.add seen row ();
         out := row :: !out
       end)
    (Table.rows a);
  Table.create_unchecked (Table.schema a) (Array.of_list (List.rev !out))

let difference a b =
  check_union_compatible a b;
  let in_b = Hashtbl.create (max 16 (Table.row_count b)) in
  Array.iter (fun row -> Hashtbl.replace in_b row ()) (Table.rows b);
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun row ->
       if (not (Hashtbl.mem in_b row)) && not (Hashtbl.mem seen row) then begin
         Hashtbl.add seen row ();
         out := row :: !out
       end)
    (Table.rows a);
  Table.create_unchecked (Table.schema a) (Array.of_list (List.rev !out))

let group_by t ~keys ~aggs =
  let schema = Table.schema t in
  let key_idxs = Array.of_list (List.map (Schema.index_of schema) keys) in
  let agg_inputs =
    List.map
      (fun (a : Aggregate.t) ->
         match Aggregate.input_column a.fn with
         | None -> None
         | Some c -> Some (Schema.index_of schema c))
      aggs
  in
  (* group order = first appearance, for deterministic output *)
  let groups : (Value.t array, Aggregate.state list) Hashtbl.t =
    Hashtbl.create (max 16 (Table.row_count t))
  in
  let order = ref [] in
  Array.iter
    (fun row ->
       let key = Array.map (fun i -> row.(i)) key_idxs in
       let states =
         match Hashtbl.find_opt groups key with
         | Some s -> s
         | None ->
           order := key :: !order;
           List.map (fun (a : Aggregate.t) -> Aggregate.init a.fn) aggs
       in
       let states' =
         List.map2
           (fun ((a : Aggregate.t), input) st ->
              let v = Option.map (fun i -> row.(i)) input in
              Aggregate.step a.fn st v)
           (List.combine aggs agg_inputs)
           states
       in
       Hashtbl.replace groups key states')
    (Table.rows t);
  let key_cols =
    List.map (fun k -> List.nth (Schema.columns schema) (Schema.index_of schema k)) keys
  in
  let agg_cols =
    List.map2
      (fun (a : Aggregate.t) input ->
         let input_ty =
           Option.map
             (fun i -> (List.nth (Schema.columns schema) i).Schema.ty)
             input
         in
         { Schema.name = a.as_name;
           ty = Aggregate.result_type a.fn ~input:input_ty })
      aggs agg_inputs
  in
  let out_schema = Schema.make (key_cols @ agg_cols) in
  let mk_row key states =
    let agg_vals =
      List.map2 (fun (a : Aggregate.t) st -> Aggregate.finish a.fn st) aggs
        states
    in
    Array.append key (Array.of_list agg_vals)
  in
  let out =
    if keys = [] && Hashtbl.length groups = 0 then
      (* global aggregate over an empty table still yields one row *)
      [ mk_row [||] (List.map (fun (a : Aggregate.t) -> Aggregate.init a.fn) aggs) ]
    else
      List.rev_map
        (fun key -> mk_row key (Hashtbl.find groups key))
        !order
  in
  Table.create_unchecked out_schema (Array.of_list out)

let top_k t ~by ~descending ~k =
  let sorted = Table.sort_by t [ by ] in
  let rows = Table.rows sorted in
  let rows = if descending then Array.of_list (List.rev (Array.to_list rows)) else rows in
  let n = min k (Array.length rows) in
  Table.create_unchecked (Table.schema t) (Array.sub rows 0 n)

let sample t ~fraction ~seed =
  if fraction >= 1. then t
  else begin
    let state = Random.State.make [| seed |] in
    let rows =
      Array.of_seq
        (Seq.filter
           (fun _ -> Random.State.float state 1. < fraction)
           (Array.to_seq (Table.rows t)))
    in
    Table.create_unchecked (Table.schema t) rows
  end
