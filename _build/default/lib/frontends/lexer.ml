type token =
  | Ident of string
  | Qualified of string * string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Punct of string
  | Eof

type t = {
  token : token;
  line : int;
}

exception Lex_error of string * int

let lex_error line fmt =
  Printf.ksprintf (fun s -> raise (Lex_error (s, line))) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit token = tokens := { token; line = !line } :: !tokens in
  let rec go i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = '\n' then begin
        incr line;
        go (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then go (i + 1)
      else if c = '#' || (c = '-' && i + 1 < n && src.[i + 1] = '-') then begin
        (* comment to end of line *)
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      end
      else if is_ident_start c then begin
        let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
        let j = scan i in
        let name = String.sub src i (j - i) in
        (* qualified name rel.column *)
        if j < n && src.[j] = '.' && j + 1 < n && is_ident_start src.[j + 1]
        then begin
          let rec scan2 k =
            if k < n && is_ident_char src.[k] then scan2 (k + 1) else k
          in
          let k = scan2 (j + 1) in
          emit (Qualified (name, String.sub src (j + 1) (k - j - 1)));
          go k
        end
        else begin
          emit (Ident name);
          go j
        end
      end
      else if is_digit c then begin
        let rec scan j ~dot =
          if j < n && is_digit src.[j] then scan (j + 1) ~dot
          else if j < n && src.[j] = '.' && (not dot) && j + 1 < n
                  && is_digit src.[j + 1] then scan (j + 1) ~dot:true
          else (j, dot)
        in
        let j, dot = scan i ~dot:false in
        let text = String.sub src i (j - i) in
        if dot then emit (Float_lit (float_of_string text))
        else emit (Int_lit (int_of_string text));
        go j
      end
      else if c = '\'' || c = '"' then begin
        let quote = c in
        let rec scan j =
          if j >= n then lex_error !line "unterminated string"
          else if src.[j] = quote then j
          else scan (j + 1)
        in
        let j = scan (i + 1) in
        emit (String_lit (String.sub src (i + 1) (j - i - 1)));
        go (j + 1)
      end
      else begin
        let two =
          if i + 1 < n then Some (String.sub src i 2) else None
        in
        match two with
        | Some (("<=" | ">=" | "!=" | "<>" | "==") as p) ->
          emit (Punct (if p = "<>" then "!=" else if p = "==" then "=" else p));
          go (i + 2)
        | _ ->
          (match c with
           | '(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | '=' | '<' | '>'
           | '+' | '-' | '*' | '/' | '.' ->
             emit (Punct (String.make 1 c));
             go (i + 1)
           | _ -> lex_error !line "unexpected character %C" c)
      end
  in
  go 0;
  emit Eof;
  List.rev !tokens

let is_keyword token kw =
  match token with
  | Ident name -> String.lowercase_ascii name = String.lowercase_ascii kw
  | _ -> false

let token_to_string = function
  | Ident s -> s
  | Qualified (a, b) -> a ^ "." ^ b
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> Printf.sprintf "%S" s
  | Punct p -> p
  | Eof -> "<eof>"
