(** Gather-Apply-Scatter DSL front-end (paper §4.1.2, Listing 2).

    Users define the three GAS steps with relational/column operators;
    Musketeer transforms the vertex-centric program into its data-flow
    IR (the reverse of GraphX's encoding, §4.3.1): SCATTER becomes a
    JOIN of the edge relation with the vertex state plus column
    algebra on the outgoing message, GATHER becomes a GROUP BY over the
    destination vertex, and APPLY becomes column algebra on the
    gathered value — all inside a WHILE.

    The PageRank of Listing 2:
    {v
GATHER = {
  SUM (vertex_value)
}
APPLY = {
  MUL [vertex_value, 0.85]
  SUM [vertex_value, 0.15]
}
SCATTER = {
  DIV [vertex_value, vertex_degree]
}
ITERATION_STOP = (iteration < 20)
ITERATION = {
  SUM [iteration, 1]
}
    v}

    Column-algebra steps read [OP [vertex_value, operand]] as
    "vertex_value := vertex_value OP operand"; [operand] may reference
    vertex columns (e.g. [vertex_degree]).

    Conventions: the vertex relation has columns
    [id:int, vertex_value:float, vertex_degree:int]; the edge relation
    has [src:int, dst:int]. Vertices with no in-edges keep their value
    through a 0-valued gather. *)

exception Parse_error of string * int

type algebra_op = {
  op : Relation.Expr.binop;
  operand : Relation.Expr.t;
}

type gather_fn =
  | Gather_sum
  | Gather_min
  | Gather_max
  | Gather_count

type program = {
  gather : gather_fn;
  apply : algebra_op list;
  scatter : algebra_op list;
  iterations : int;
}

val parse : string -> program

(** The WHILE body alone (the one-superstep dataflow), for workflows
    that splice PageRank behind a batch stage (§6.3). Loop-carried
    relation: [vertices]. *)
val body_graph :
  program -> vertices:string -> edges:string -> Ir.Operator.graph

(** [to_dataflow p ~vertices ~edges] builds the WHILE-based IR graph
    reading the named HDFS relations. The loop's output relation is
    [vertices]. *)
val to_dataflow : program -> vertices:string -> edges:string ->
  Ir.Operator.graph

val parse_to_graph :
  string -> vertices:string -> edges:string -> Ir.Operator.graph
