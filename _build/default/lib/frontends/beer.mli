(** BEER — Musketeer's own SQL-like workflow DSL with iteration
    (paper §4.1.1).

    Assignment-oriented: every statement binds a relation name, and
    [WHILE] blocks iterate a group of statements with loop-carried
    relations inferred automatically (relations that the block both
    reads and re-binds). Example (single-source shortest paths):

    {v
dists = INPUT 'seeds';
edges = INPUT 'edges';
WHILE (CHANGES dists) MAXITER 50 {
  step  = dists JOIN edges ON node = src;
  cand  = MAP step SET cost = cost + weight;
  next  = SELECT dst AS node, MIN(cost) AS cost FROM cand GROUP BY dst;
  dists = next UNION dists;
  dists = SELECT node, MIN(cost) AS cost FROM dists GROUP BY node;
}
OUTPUT dists;
    v}

    Grammar:
    {v
program := item*
item    := name '=' rexpr ';'
         | WHILE '(' cond ')' [MAXITER int] '{' item* '}'
         | OUTPUT name ';'
cond    := ITERATION '<' int | NONEMPTY name | CHANGES name
rexpr   := INPUT string
         | SELECT sitems FROM name [WHERE expr] [GROUP BY cols]
         | name JOIN name ON col '=' col
         | name SEMIJOIN name ON col '=' col
         | name ANTIJOIN name ON col '=' col
         | name CROSS name
         | name (UNION | INTERSECT | DIFFERENCE) name
         | MAP name SET col '=' expr
         | DISTINCT name
         | TOP int OF name BY col [ASC|DESC]
         | SORT name BY col [ASC|DESC]
sitems  := sitem (',' sitem)*
sitem   := col [AS name] | AGG '(' col ')' [AS name]
    v}

    [SELECT col AS name] projects and renames; inside a grouped select,
    plain columns must be the group keys. *)

exception Parse_error of string * int

val parse : string -> Ir.Operator.graph
