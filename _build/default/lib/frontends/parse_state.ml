type t = {
  mutable tokens : Lexer.t list;
  mutable last_line : int;
}

exception Parse_error of string * int

let of_string src =
  try { tokens = Lexer.tokenize src; last_line = 1 }
  with Lexer.Lex_error (msg, line) -> raise (Parse_error (msg, line))

let peek t =
  match t.tokens with
  | { Lexer.token; _ } :: _ -> token
  | [] -> Lexer.Eof

let peek2 t =
  match t.tokens with
  | _ :: { Lexer.token; _ } :: _ -> token
  | _ -> Lexer.Eof

let line t =
  match t.tokens with
  | { Lexer.line; _ } :: _ -> line
  | [] -> t.last_line

let advance t =
  match t.tokens with
  | tok :: rest ->
    t.tokens <- rest;
    t.last_line <- tok.Lexer.line;
    tok.Lexer.token
  | [] -> Lexer.Eof

let fail t fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (s, line t))) fmt

let expect_punct t p =
  match advance t with
  | Lexer.Punct q when q = p -> ()
  | tok -> fail t "expected %S, found %s" p (Lexer.token_to_string tok)

let expect_kw t kw =
  let tok = advance t in
  if not (Lexer.is_keyword tok kw) then
    fail t "expected keyword %s, found %s" (String.uppercase_ascii kw)
      (Lexer.token_to_string tok)

let ident t =
  match advance t with
  | Lexer.Ident name -> name
  | tok -> fail t "expected identifier, found %s" (Lexer.token_to_string tok)

let accept_kw t kw =
  if Lexer.is_keyword (peek t) kw then begin
    ignore (advance t);
    true
  end
  else false

let accept_punct t p =
  match peek t with
  | Lexer.Punct q when q = p ->
    ignore (advance t);
    true
  | _ -> false

let at_kw t kw = Lexer.is_keyword (peek t) kw

(* ---- expressions ---- *)

open Relation

let keywordish name =
  List.mem (String.lowercase_ascii name)
    [ "and"; "or"; "not"; "true"; "false"; "if"; "then"; "else" ]

let rec parse_or t =
  let left = parse_and t in
  if accept_kw t "or" then Expr.Or (left, parse_or t) else left

and parse_and t =
  let left = parse_not t in
  if accept_kw t "and" then Expr.And (left, parse_and t) else left

and parse_not t =
  if accept_kw t "not" then Expr.Not (parse_not t) else parse_cmp t

and parse_cmp t =
  let left = parse_addsub t in
  match peek t with
  | Lexer.Punct "=" ->
    ignore (advance t);
    Expr.Cmp (Expr.Eq, left, parse_addsub t)
  | Lexer.Punct "!=" ->
    ignore (advance t);
    Expr.Cmp (Expr.Neq, left, parse_addsub t)
  | Lexer.Punct "<" ->
    ignore (advance t);
    Expr.Cmp (Expr.Lt, left, parse_addsub t)
  | Lexer.Punct "<=" ->
    ignore (advance t);
    Expr.Cmp (Expr.Le, left, parse_addsub t)
  | Lexer.Punct ">" ->
    ignore (advance t);
    Expr.Cmp (Expr.Gt, left, parse_addsub t)
  | Lexer.Punct ">=" ->
    ignore (advance t);
    Expr.Cmp (Expr.Ge, left, parse_addsub t)
  | _ -> left

and parse_addsub t =
  let rec loop left =
    match peek t with
    | Lexer.Punct "+" ->
      ignore (advance t);
      loop (Expr.Binop (Expr.Add, left, parse_muldiv t))
    | Lexer.Punct "-" ->
      ignore (advance t);
      loop (Expr.Binop (Expr.Sub, left, parse_muldiv t))
    | _ -> left
  in
  loop (parse_muldiv t)

and parse_muldiv t =
  let rec loop left =
    match peek t with
    | Lexer.Punct "*" ->
      ignore (advance t);
      loop (Expr.Binop (Expr.Mul, left, parse_primary t))
    | Lexer.Punct "/" ->
      ignore (advance t);
      loop (Expr.Binop (Expr.Div, left, parse_primary t))
    | _ -> left
  in
  loop (parse_primary t)

and parse_primary t =
  match advance t with
  | Lexer.Int_lit i -> Expr.Const (Value.Int i)
  | Lexer.Float_lit f -> Expr.Const (Value.Float f)
  | Lexer.String_lit s -> Expr.Const (Value.Str s)
  | Lexer.Punct "(" ->
    let e = parse_or t in
    expect_punct t ")";
    e
  | Lexer.Punct "-" -> (
    match parse_primary t with
    | Expr.Const (Value.Int i) -> Expr.Const (Value.Int (-i))
    | Expr.Const (Value.Float f) -> Expr.Const (Value.Float (-.f))
    | e -> Expr.Binop (Expr.Sub, Expr.Const (Value.Int 0), e))
  | Lexer.Ident name when String.lowercase_ascii name = "true" ->
    Expr.Const (Value.Bool true)
  | Lexer.Ident name when String.lowercase_ascii name = "false" ->
    Expr.Const (Value.Bool false)
  | Lexer.Ident name when not (keywordish name) -> Expr.Col name
  | Lexer.Qualified (_, column) -> Expr.Col column
  | tok -> fail t "expected expression, found %s" (Lexer.token_to_string tok)

let expr t = parse_or t
