open Relation

type query = {
  qid : int;
  kind : kind;
}

and kind =
  | Read of string
  | Ref of string  (* loop-carried / seed reference inside iterate *)
  | Where of Expr.t * query
  | Select of string list * query
  | Map of string * Expr.t * query
  | Join of (string * string) * query * query
  | Louter of (string * string) * Value.t list * query * query
  | Semi of (string * string) * query * query
  | Anti of (string * string) * query * query
  | Cross of query * query
  | Union of query * query
  | Intersect of query * query
  | Except of query * query
  | Distinct of query
  | Group_by of string list * Aggregate.t list * query
  | Aggregate_q of Aggregate.t list * query
  | Order_by of bool * string * query
  | Top of bool * string * int * query
  | Iterate of {
      carrying : string list;
      iterations : int;
      seeds : (string * query) list;
      body : (string -> query) -> (string * query) list;
    }

let counter = ref 0

let mk kind =
  incr counter;
  { qid = !counter; kind }

let read relation = mk (Read relation)

let where pred q = mk (Where (pred, q))

let select columns q = mk (Select (columns, q))

let map ~target expr q = mk (Map (target, expr, q))

let join ~on left right = mk (Join (on, left, right))

let left_outer_join ~on ~defaults left right =
  mk (Louter (on, defaults, left, right))

let semi_join ~on left right = mk (Semi (on, left, right))

let anti_join ~on left right = mk (Anti (on, left, right))

let cross a b = mk (Cross (a, b))

let union a b = mk (Union (a, b))

let intersect a b = mk (Intersect (a, b))

let except a b = mk (Except (a, b))

let distinct q = mk (Distinct q)

let group_by ~keys ~aggs q = mk (Group_by (keys, aggs, q))

let aggregate aggs q = mk (Aggregate_q (aggs, q))

let order_by ?(descending = false) by q = mk (Order_by (descending, by, q))

let top ?(descending = true) ~by k q = mk (Top (descending, by, k, q))

let iterate ~carrying ~iterations seeds body =
  mk (Iterate { carrying; iterations; seeds; body })

(* ---------------- elaboration ---------------- *)

type ctx = {
  builder : Ir.Builder.t;
  memo : (int, Ir.Builder.handle) Hashtbl.t;
  refs : (string, Ir.Builder.handle) Hashtbl.t;
}

let rec elaborate ctx ?name q =
  match name, Hashtbl.find_opt ctx.memo q.qid with
  | None, Some h -> h
  | _ ->
    let h =
      match q.kind with
      | Read relation -> Ir.Builder.input ctx.builder relation
      | Ref r -> (
        match Hashtbl.find_opt ctx.refs r with
        | Some h -> h
        | None -> invalid_arg (Printf.sprintf "Lindi: unbound reference %S" r))
      | Where (pred, src) ->
        Ir.Builder.select ctx.builder ?name ~pred (elaborate ctx src)
      | Select (columns, src) ->
        Ir.Builder.project ctx.builder ?name ~columns (elaborate ctx src)
      | Map (target, expr, src) ->
        Ir.Builder.map ctx.builder ?name ~target ~expr (elaborate ctx src)
      | Join ((left_key, right_key), l, r) ->
        Ir.Builder.join ctx.builder ?name ~left_key ~right_key
          (elaborate ctx l) (elaborate ctx r)
      | Louter ((left_key, right_key), defaults, l, r) ->
        Ir.Builder.left_outer_join ctx.builder ?name ~left_key ~right_key
          ~defaults (elaborate ctx l) (elaborate ctx r)
      | Semi ((left_key, right_key), l, r) ->
        Ir.Builder.semi_join ctx.builder ?name ~left_key ~right_key
          (elaborate ctx l) (elaborate ctx r)
      | Anti ((left_key, right_key), l, r) ->
        Ir.Builder.anti_join ctx.builder ?name ~left_key ~right_key
          (elaborate ctx l) (elaborate ctx r)
      | Cross (l, r) ->
        Ir.Builder.cross ctx.builder ?name (elaborate ctx l) (elaborate ctx r)
      | Union (l, r) ->
        Ir.Builder.union ctx.builder ?name (elaborate ctx l) (elaborate ctx r)
      | Intersect (l, r) ->
        Ir.Builder.intersect ctx.builder ?name (elaborate ctx l)
          (elaborate ctx r)
      | Except (l, r) ->
        Ir.Builder.difference ctx.builder ?name (elaborate ctx l)
          (elaborate ctx r)
      | Distinct src -> Ir.Builder.distinct ctx.builder ?name (elaborate ctx src)
      | Group_by (keys, aggs, src) ->
        Ir.Builder.group_by ctx.builder ?name ~keys ~aggs (elaborate ctx src)
      | Aggregate_q (aggs, src) ->
        Ir.Builder.agg ctx.builder ?name ~aggs (elaborate ctx src)
      | Order_by (descending, by, src) ->
        Ir.Builder.sort ctx.builder ?name ~by ~descending (elaborate ctx src)
      | Top (descending, by, k, src) ->
        Ir.Builder.top_k ctx.builder ?name ~by ~descending ~k
          (elaborate ctx src)
      | Iterate { carrying; iterations; seeds; body } ->
        elaborate_iterate ctx ?name ~carrying ~iterations ~seeds ~body ()
    in
    if name = None then Hashtbl.replace ctx.memo q.qid h;
    h

and elaborate_iterate ctx ?name ~carrying ~iterations ~seeds ~body () =
  let body_builder = Ir.Builder.create () in
  let body_ctx =
    { builder = body_builder; memo = Hashtbl.create 16;
      refs = Hashtbl.create 8 }
  in
  (* seed inputs, in seed order — the WHILE binds positionally *)
  List.iter
    (fun (seed_name, _) ->
       Hashtbl.replace body_ctx.refs seed_name
         (Ir.Builder.input body_builder seed_name))
    seeds;
  let next = body (fun r -> mk (Ref r)) in
  let outputs =
    List.map
      (fun carried ->
         match List.assoc_opt carried next with
         | Some q -> elaborate body_ctx ~name:carried q
         | None ->
           invalid_arg
             (Printf.sprintf "Lindi.iterate: body does not produce %S" carried))
      carrying
  in
  let body_graph =
    Ir.Builder.finish_body body_builder ~outputs ~loop_carried:carrying
  in
  let seed_handles = List.map (fun (_, q) -> elaborate ctx q) seeds in
  Ir.Builder.while_ ctx.builder ?name
    ~condition:(Ir.Operator.Fixed_iterations iterations)
    ~max_iterations:(iterations + 1) ~body:body_graph seed_handles

let fresh_ctx () =
  { builder = Ir.Builder.create (); memo = Hashtbl.create 16;
    refs = Hashtbl.create 8 }

let finish ~name q =
  let ctx = fresh_ctx () in
  let h = elaborate ctx ~name q in
  Ir.Builder.finish ctx.builder ~outputs:[ h ]

let finish_all named =
  let ctx = fresh_ctx () in
  let handles =
    List.map (fun (name, q) -> elaborate ctx ~name q) named
  in
  Ir.Builder.finish ctx.builder ~outputs:handles
