lib/frontends/parse_state.mli: Lexer Relation
