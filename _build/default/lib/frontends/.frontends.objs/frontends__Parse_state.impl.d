lib/frontends/parse_state.ml: Expr Lexer List Printf Relation String Value
