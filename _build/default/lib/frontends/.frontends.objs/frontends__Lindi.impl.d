lib/frontends/lindi.ml: Aggregate Expr Hashtbl Ir List Printf Relation Value
