lib/frontends/gas.mli: Ir Relation
