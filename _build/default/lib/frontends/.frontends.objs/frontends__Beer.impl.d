lib/frontends/beer.ml: Aggregate Expr Ir Lexer List Option Parse_state Printf Relation String
