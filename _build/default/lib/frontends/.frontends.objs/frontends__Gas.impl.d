lib/frontends/gas.ml: Aggregate Expr Ir Lexer List Parse_state Relation String
