lib/frontends/beer.mli: Ir
