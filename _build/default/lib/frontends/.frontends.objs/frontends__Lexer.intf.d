lib/frontends/lexer.mli:
