lib/frontends/pig.mli: Ir
