lib/frontends/lindi.mli: Ir Relation
