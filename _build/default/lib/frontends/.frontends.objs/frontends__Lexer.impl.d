lib/frontends/lexer.ml: List Printf String
