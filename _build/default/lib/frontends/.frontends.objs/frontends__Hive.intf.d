lib/frontends/hive.mli: Ir
