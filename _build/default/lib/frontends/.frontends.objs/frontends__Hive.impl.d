lib/frontends/hive.ml: Aggregate Ir Lexer List Parse_state Relation String
