lib/frontends/pig.ml: Aggregate Expr Ir Lexer List Option Parse_state Printf Relation String
