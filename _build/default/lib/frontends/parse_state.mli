(** Mutable token-stream cursor shared by the recursive-descent
    front-end parsers, plus the common SQL-style expression grammar. *)

type t

exception Parse_error of string * int  (** message, line *)

val of_string : string -> t

val peek : t -> Lexer.token

val peek2 : t -> Lexer.token

val line : t -> int

val advance : t -> Lexer.token

(** [expect_punct t ";"] — consume or fail. *)
val expect_punct : t -> string -> unit

(** [expect_kw t "select"] — consume the (case-insensitive) keyword. *)
val expect_kw : t -> string -> unit

(** Consume an identifier (or fail). *)
val ident : t -> string

(** [accept_kw t "where"] — consume iff present. *)
val accept_kw : t -> string -> bool

val accept_punct : t -> string -> bool

val at_kw : t -> string -> bool

val fail : t -> ('a, unit, string, 'b) format4 -> 'a

(** Boolean/arithmetic expression with SQL-ish precedence:
    OR < AND < NOT < comparison < [+ -] < [* /] < primary.
    Qualified columns [rel.col] resolve to the bare column name [col]
    (the IR wires relations structurally). *)
val expr : t -> Relation.Expr.t
