(** HiveQL-subset front-end (paper §4.1.1, Listing 1).

    Statement-oriented: each statement names its result with [AS], and
    later statements refer to earlier results (or to HDFS relations) by
    name. The subset covers the relational core the paper's workflows
    use:

    {v
SELECT id, street, town FROM properties AS locs;
locs JOIN prices ON locs.id = prices.id AS id_price;
SELECT street, town, MAX(price) FROM id_price
  GROUP BY street AND town AS street_price;
    v}

    Grammar:
    {v
program   := statement (';' statement)* [';']
statement := SELECT items FROM name [WHERE expr]
               [GROUP BY name (AND name)*] [HAVING expr] AS name
           | name JOIN name ON qual '=' qual AS name
           | name (UNION | INTERSECT | EXCEPT) name AS name
items     := item (',' item)*
item      := column | rel.column
           | (MAX|MIN|SUM|AVG|COUNT) '(' column ')' [AS column]
    v}

    Relations defined but never consumed become the workflow outputs. *)

exception Parse_error of string * int

val parse : string -> Ir.Operator.graph
