(** Pig Latin front-end (subset).

    Pig is the paper's canonical example of a high-level framework whose
    semantics are "heavily influenced by the execution engine to which
    they compile" (§9 — COGROUP delineating MapReduce jobs); translating
    it to the Musketeer IR decouples exactly that. The subset covers the
    idioms production Pig scripts are built from:

    {v
purchases = LOAD 'purchases';
eu        = FILTER purchases BY region == 'EU';
by_user   = GROUP eu BY uid;
spend     = FOREACH by_user GENERATE group, SUM(eu.amount) AS total;
big       = FILTER spend BY total > 1000;
STORE big INTO 'big_spenders';
    v}

    Grammar:
    {v
program   := statement*
statement := name = LOAD 'relation' ;
           | name = FILTER name BY expr ;
           | name = FOREACH name GENERATE items ;
           | name = GROUP name BY key | (key, ...) ;
           | name = JOIN name BY col, name BY col ;
           | name = DISTINCT name ;
           | name = UNION name, name ;
           | name = ORDER name BY col [ASC|DESC] ;
           | name = LIMIT name n ;
           | STORE name INTO 'relation' ;
items     := item (, item)*
item      := group | col [AS name]
           | (SUM|MIN|MAX|AVG|COUNT) ( rel.col ) [AS name]
           | expr AS name
    v}

    [FOREACH] over a [GROUP]ed relation must generate [group] and
    aggregates (the standard Pig aggregation idiom) and becomes a single
    GROUP BY operator; [FOREACH] over a plain relation becomes
    projection / column algebra. [group] expands to the grouping keys.
    Pig's [==] equality and [!=] are accepted. *)

exception Parse_error of string * int

val parse : string -> Ir.Operator.graph
