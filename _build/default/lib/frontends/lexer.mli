(** Shared tokenizer for the textual front-ends (BEER, HiveQL subset,
    GAS DSL). Keywords are case-insensitive; identifiers keep their
    case. *)

type token =
  | Ident of string       (** bare identifier (lower/upper, _, digits) *)
  | Qualified of string * string  (** [rel.column] *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string  (** single- or double-quoted *)
  | Punct of string       (** ( ) { } [ ] , ; = < > <= >= != + - * / . *)
  | Eof

type t = {
  token : token;
  line : int;
}

exception Lex_error of string * int  (** message, line *)

(** Tokenize a whole program. Comments run from [--] or [#] to end of
    line. *)
val tokenize : string -> t list

(** Case-insensitive keyword match on an identifier token. *)
val is_keyword : token -> string -> bool

val token_to_string : token -> string
