(** Lindi-style LINQ combinator front-end (paper §4.1.1).

    Lindi exposes SQL-like operators over Naiad through a LINQ API; this
    shim offers the same surface as OCaml combinators that build the
    Musketeer IR. A query is a pipeline value; [run]/[finish] closes it
    into a workflow graph:

    {[
      let q =
        Lindi.read "properties"
        |> Lindi.where Expr.(col "price" > int 0)
        |> Lindi.select [ "street"; "town"; "price" ]
        |> Lindi.group_by ~keys:[ "street"; "town" ]
             ~aggs:[ Aggregate.make (Aggregate.Max "price") ~as_name:"max_price" ]
      in
      let graph = Lindi.finish ~name:"street_price" q
    ]} *)

type query

(** Read an HDFS relation. Each [read] starts a fresh pipeline; shared
    sub-queries are expressed with [let]. *)
val read : string -> query

val where : Relation.Expr.t -> query -> query

val select : string list -> query -> query

(** LINQ [Select] with a computed column. *)
val map : target:string -> Relation.Expr.t -> query -> query

val join : on:string * string -> query -> query -> query

(** Left outer join; [defaults] fill the right-side columns of
    unmatched left rows (right-schema order, without the key). *)
val left_outer_join :
  on:string * string -> defaults:Relation.Value.t list -> query -> query ->
  query

val semi_join : on:string * string -> query -> query -> query

val anti_join : on:string * string -> query -> query -> query

val cross : query -> query -> query

val union : query -> query -> query

val intersect : query -> query -> query

val except : query -> query -> query

val distinct : query -> query

val group_by :
  keys:string list -> aggs:Relation.Aggregate.t list -> query -> query

val aggregate : Relation.Aggregate.t list -> query -> query

val order_by : ?descending:bool -> string -> query -> query

val top : ?descending:bool -> by:string -> int -> query -> query

(** [iterate ~carrying ~iterations seeds body] — Lindi's fixed-point
    operator: [body] receives one query per seed pipeline (bound to the
    names in [carrying] plus the extra read-only inputs) and returns the
    next value of each carried relation. *)
val iterate :
  carrying:string list -> iterations:int -> (string * query) list ->
  ((string -> query) -> (string * query) list) -> query

(** Close the pipeline into a one-output workflow graph. [name] is the
    output relation. *)
val finish : name:string -> query -> Ir.Operator.graph

(** Close with several outputs. *)
val finish_all : (string * query) list -> Ir.Operator.graph
