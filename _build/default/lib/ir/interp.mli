(** Reference interpreter for IR graphs.

    This is the semantic ground truth: every engine simulator produces
    exactly these tables (they share the {!Relation.Kernel} kernels and
    this evaluation order), so tests can compare any back-end against
    [Interp] output, and the engines only differ in simulated time.

    WHILE operators are executed by successive body expansion, as the
    paper describes (§4.2): each iteration re-evaluates the body with the
    loop-carried relations rebound to the previous iteration's outputs. *)

exception Runtime_error of string

(** Relation store the interpreter reads inputs from. *)
type store = (string, Relation.Table.t) Hashtbl.t

val store_of_list : (string * Relation.Table.t) list -> store

(** [run ~store g] evaluates the whole graph. Returns the bindings of
    all node output relations (intermediates included; for WHILE nodes,
    the final value of the loop). Raises {!Runtime_error} on missing
    inputs, {!Relation.Expr.Type_error} on ill-typed expressions. *)
val run : store:store -> Dag.t -> (string * Relation.Table.t) list

(** [outputs ~store g] is [run] restricted to the graph's declared
    output relations, in declaration order. *)
val outputs : store:store -> Dag.t -> (string * Relation.Table.t) list

(** [eval_kind kind inputs] applies a single non-WHILE operator to its
    input tables — the building block engines use. WHILE and INPUT are
    rejected with {!Runtime_error} (engines handle them structurally). *)
val eval_kind : Operator.kind -> Relation.Table.t list -> Relation.Table.t

(** [loop_finished condition ~iteration ~max_iterations ~current ~previous]
    decides whether a WHILE loop should stop *after* an iteration, given
    the loop-carried relation values before and after it. Exposed so
    engine simulators implement identical loop semantics. *)
val loop_finished :
  Operator.loop_condition -> iteration:int -> max_iterations:int ->
  current:(string -> Relation.Table.t) ->
  previous:(string -> Relation.Table.t) -> bool
