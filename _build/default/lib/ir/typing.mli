(** Schema inference over IR graphs.

    Mirrors the runtime behaviour of {!Relation.Kernel} so that the code
    generator's look-ahead type inference (paper §4.3.4) and the
    validation of front-end translations can reason about intermediate
    schemas without executing anything. *)

exception Type_error of string

(** [infer ~catalog g] computes the output schema of every node.
    [catalog] resolves the schemas of INPUT relations (raise
    [Not_found] for unknown ones, reported as {!Type_error}).

    WHILE bodies are checked for type stability: every loop-carried
    relation must be re-produced with exactly the schema it was consumed
    with, otherwise iteration would be ill-typed.

    Black-box nodes cannot be typed and raise {!Type_error}; workflows
    using them bypass schema checks via their native back-end. *)
val infer :
  catalog:(string -> Relation.Schema.t) -> Dag.t ->
  (int, Relation.Schema.t) Hashtbl.t

(** Schema of a single node (convenience over {!infer}). *)
val node_schema :
  catalog:(string -> Relation.Schema.t) -> Dag.t -> int -> Relation.Schema.t

(** Schemas of the graph's output relations, in output order. *)
val output_schemas :
  catalog:(string -> Relation.Schema.t) -> Dag.t ->
  (string * Relation.Schema.t) list
