type loop_condition =
  | Fixed_iterations of int
  | Until_empty of string
  | Until_fixpoint of string

type kind =
  | Input of { relation : string }
  | Select of { pred : Relation.Expr.t }
  | Project of { columns : string list }
  | Map of { target : string; expr : Relation.Expr.t }
  | Join of { left_key : string; right_key : string }
  | Left_outer_join of {
      left_key : string;
      right_key : string;
      defaults : Relation.Value.t list;
    }
  | Semi_join of { left_key : string; right_key : string }
  | Anti_join of { left_key : string; right_key : string }
  | Cross
  | Union
  | Intersect
  | Difference
  | Distinct
  | Group_by of { keys : string list; aggs : Relation.Aggregate.t list }
  | Agg of { aggs : Relation.Aggregate.t list }
  | Sort of { by : string; descending : bool }
  | Top_k of { by : string; descending : bool; k : int }
  | Udf of udf
  | While of { condition : loop_condition; max_iterations : int; body : graph }
  | Black_box of { backend_hint : string; description : string }

and udf = {
  udf_name : string;
  arity : int;
  fn : Relation.Table.t list -> Relation.Table.t;
  out_schema : Relation.Schema.t list -> Relation.Schema.t;
  cost_factor : float;
}

and node = {
  id : int;
  kind : kind;
  inputs : int list;
  output : string;
}

and graph = {
  nodes : node list;
  outputs : int list;
  loop_carried : string list;
}

let expected_arity = function
  | Input _ -> Some 0
  | Select _ | Project _ | Map _ | Distinct | Group_by _ | Agg _ | Sort _
  | Top_k _ ->
    Some 1
  | Join _ | Left_outer_join _ | Semi_join _ | Anti_join _ | Cross | Union
  | Intersect | Difference ->
    Some 2
  | Udf u -> Some u.arity
  | While _ | Black_box _ -> None

let kind_name = function
  | Input _ -> "INPUT"
  | Select _ -> "SELECT"
  | Project _ -> "PROJECT"
  | Map _ -> "MAP"
  | Join _ -> "JOIN"
  | Left_outer_join _ -> "LEFT OUTER JOIN"
  | Semi_join _ -> "SEMI JOIN"
  | Anti_join _ -> "ANTI JOIN"
  | Cross -> "CROSS"
  | Union -> "UNION"
  | Intersect -> "INTERSECT"
  | Difference -> "DIFFERENCE"
  | Distinct -> "DISTINCT"
  | Group_by _ -> "GROUP BY"
  | Agg _ -> "AGG"
  | Sort _ -> "SORT"
  | Top_k _ -> "TOP_K"
  | Udf _ -> "UDF"
  | While _ -> "WHILE"
  | Black_box _ -> "BLACK_BOX"

let describe kind =
  match kind with
  | Input { relation } -> Printf.sprintf "INPUT %s" relation
  | Select { pred } ->
    Printf.sprintf "SELECT WHERE %s" (Relation.Expr.to_string pred)
  | Project { columns } ->
    Printf.sprintf "PROJECT [%s]" (String.concat ", " columns)
  | Map { target; expr } ->
    Printf.sprintf "MAP %s := %s" target (Relation.Expr.to_string expr)
  | Join { left_key; right_key } ->
    Printf.sprintf "JOIN ON %s = %s" left_key right_key
  | Left_outer_join { left_key; right_key; defaults } ->
    Printf.sprintf "LEFT OUTER JOIN ON %s = %s DEFAULT [%s]" left_key
      right_key
      (String.concat ", " (List.map Relation.Value.to_string defaults))
  | Semi_join { left_key; right_key } ->
    Printf.sprintf "SEMI JOIN ON %s = %s" left_key right_key
  | Anti_join { left_key; right_key } ->
    Printf.sprintf "ANTI JOIN ON %s = %s" left_key right_key
  | Cross -> "CROSS JOIN"
  | Union -> "UNION"
  | Intersect -> "INTERSECT"
  | Difference -> "DIFFERENCE"
  | Distinct -> "DISTINCT"
  | Group_by { keys; aggs } ->
    Printf.sprintf "GROUP BY [%s] AGG [%s]" (String.concat ", " keys)
      (String.concat ", "
         (List.map
            (fun (a : Relation.Aggregate.t) ->
               Relation.Aggregate.fn_to_string a.fn)
            aggs))
  | Agg { aggs } ->
    Printf.sprintf "AGG [%s]"
      (String.concat ", "
         (List.map
            (fun (a : Relation.Aggregate.t) ->
               Relation.Aggregate.fn_to_string a.fn)
            aggs))
  | Sort { by; descending } ->
    Printf.sprintf "SORT BY %s %s" by (if descending then "DESC" else "ASC")
  | Top_k { by; descending; k } ->
    Printf.sprintf "TOP %d BY %s %s" k by (if descending then "DESC" else "ASC")
  | Udf u -> Printf.sprintf "UDF %s/%d" u.udf_name u.arity
  | While { condition; max_iterations; body } ->
    let cond =
      match condition with
      | Fixed_iterations n -> Printf.sprintf "iteration < %d" n
      | Until_empty r -> Printf.sprintf "until %s empty" r
      | Until_fixpoint r -> Printf.sprintf "until %s fixpoint" r
    in
    Printf.sprintf "WHILE (%s, max %d) { %d ops }" cond max_iterations
      (List.length body.nodes)
  | Black_box { backend_hint; description } ->
    Printf.sprintf "BLACK_BOX[%s] %s" backend_hint description

let selective = function
  | Select _ | Project _ | Distinct | Group_by _ | Agg _ | Top_k _
  | Intersect | Difference | Semi_join _ | Anti_join _ ->
    true
  | Input _ | Map _ | Join _ | Left_outer_join _ | Cross | Union | Sort _
  | Udf _ | While _ | Black_box _ ->
    false

let generative = function
  | Join _ | Left_outer_join _ | Cross | Union | Udf _ | While _
  | Black_box _ ->
    true
  | Input _ | Select _ | Project _ | Map _ | Intersect | Difference
  | Distinct | Group_by _ | Agg _ | Sort _ | Top_k _ | Semi_join _
  | Anti_join _ ->
    false

let needs_shuffle = function
  | Join _ | Left_outer_join _ | Semi_join _ | Anti_join _ | Group_by _
  | Agg _ | Intersect | Difference | Distinct | Sort _ | Top_k _ | Cross ->
    true
  | Input _ | Select _ | Project _ | Map _ | Union | Udf _ | While _
  | Black_box _ ->
    false

let associative_aggregation = function
  | Group_by { aggs; _ } | Agg { aggs } ->
    List.for_all
      (fun (a : Relation.Aggregate.t) -> Relation.Aggregate.associative a.fn)
      aggs
  | Input _ | Select _ | Project _ | Map _ | Join _ | Left_outer_join _
  | Semi_join _ | Anti_join _ | Cross | Union | Intersect | Difference
  | Distinct | Sort _ | Top_k _ | Udf _ | While _ | Black_box _ ->
    true

let pp_kind ppf kind = Format.pp_print_string ppf (describe kind)
