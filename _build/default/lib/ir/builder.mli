(** Imperative construction of IR graphs with the invariants {!Dag}
    expects (strictly increasing ids, edges pointing forward).

    Front-ends translate their ASTs through this interface; tests and
    the Lindi combinator shim use it directly. *)

type t

(** Handle to a node under construction; produces one relation. *)
type handle

val create : unit -> t

(** Id of the underlying node (stable once created). *)
val id : handle -> int

(** Relation name the node produces. *)
val relation : handle -> string

val input : t -> string -> handle

(** Unary/binary operators. [?name] sets the output relation name
    (defaults to a fresh ["tmp<N>"]). *)

val select : t -> ?name:string -> pred:Relation.Expr.t -> handle -> handle

val project : t -> ?name:string -> columns:string list -> handle -> handle

val map :
  t -> ?name:string -> target:string -> expr:Relation.Expr.t -> handle ->
  handle

val join :
  t -> ?name:string -> left_key:string -> right_key:string -> handle ->
  handle -> handle

val left_outer_join :
  t -> ?name:string -> left_key:string -> right_key:string ->
  defaults:Relation.Value.t list -> handle -> handle -> handle

val semi_join :
  t -> ?name:string -> left_key:string -> right_key:string -> handle ->
  handle -> handle

val anti_join :
  t -> ?name:string -> left_key:string -> right_key:string -> handle ->
  handle -> handle

val cross : t -> ?name:string -> handle -> handle -> handle

val union : t -> ?name:string -> handle -> handle -> handle

val intersect : t -> ?name:string -> handle -> handle -> handle

val difference : t -> ?name:string -> handle -> handle -> handle

val distinct : t -> ?name:string -> handle -> handle

val group_by :
  t -> ?name:string -> keys:string list -> aggs:Relation.Aggregate.t list ->
  handle -> handle

val agg : t -> ?name:string -> aggs:Relation.Aggregate.t list -> handle -> handle

val sort : t -> ?name:string -> by:string -> descending:bool -> handle -> handle

val top_k :
  t -> ?name:string -> by:string -> descending:bool -> k:int -> handle ->
  handle

val udf : t -> ?name:string -> Operator.udf -> handle list -> handle

(** [while_ b ~condition ~max_iterations ~body inputs] adds a WHILE node.
    [body] must have been finished with {!finish_body}; [inputs] are
    bound positionally to the body's INPUT relations in body order, and
    the WHILE node's output relation is the body's first output. *)
val while_ :
  t -> ?name:string -> condition:Operator.loop_condition ->
  max_iterations:int -> body:Operator.graph -> handle list -> handle

val black_box :
  t -> ?name:string -> backend_hint:string -> description:string ->
  handle list -> handle

(** Finish a top-level workflow graph. The graph is validated.
    Raises {!Dag.Invalid} on inconsistency. *)
val finish : t -> outputs:handle list -> Operator.graph

(** Finish a WHILE body: [loop_carried] names relations rebound between
    iterations; they must appear among the body's inputs and outputs. *)
val finish_body :
  t -> outputs:handle list -> loop_carried:string list -> Operator.graph
