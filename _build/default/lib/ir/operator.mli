(** Musketeer's intermediate representation: a DAG of data-flow
    operators (paper §4.2).

    The operator set is loosely based on relational algebra — SELECT,
    PROJECT, UNION, INTERSECT, JOIN, DIFFERENCE, aggregators (AGG,
    GROUP BY), column-level algebra (SUM, SUB, DIV, MUL via {!kind.Map}),
    extremes (MAX, MIN via aggregations and {!kind.Top_k}) — plus WHILE
    for data-dependent iteration, user-defined functions, and a black-box
    escape hatch to a native back-end.

    The [graph] type lives here (rather than in {!Dag}) because WHILE
    bodies are themselves graphs; {!Dag} provides the operations. *)

(** Stop condition of a WHILE operator. The DAG is extended dynamically,
    one body expansion per iteration (paper §4.2). *)
type loop_condition =
  | Fixed_iterations of int
      (** the paper's [ITERATION_STOP (iteration < n)] *)
  | Until_empty of string
      (** iterate while the named loop-carried relation has rows
          (frontier-style algorithms, e.g. SSSP) *)
  | Until_fixpoint of string
      (** iterate until the named loop-carried relation stops changing
          (within [max_iterations] as a safety net) *)

type kind =
  | Input of { relation : string }
      (** reads a named relation from storage *)
  | Select of { pred : Relation.Expr.t }
  | Project of { columns : string list }
  | Map of { target : string; expr : Relation.Expr.t }
      (** column-level algebra: the paper's SUM/SUB/MUL/DIV operators *)
  | Join of { left_key : string; right_key : string }
  | Left_outer_join of {
      left_key : string;
      right_key : string;
      defaults : Relation.Value.t list;
          (** values filling the right-side columns of unmatched left
              rows (no NULLs in the value model) *)
    }
  | Semi_join of { left_key : string; right_key : string }
      (** left rows with at least one match; left schema *)
  | Anti_join of { left_key : string; right_key : string }
      (** left rows with no match; left schema *)
  | Cross  (** cross join (used by the paper's k-means workflow) *)
  | Union
  | Intersect
  | Difference
  | Distinct
  | Group_by of { keys : string list; aggs : Relation.Aggregate.t list }
  | Agg of { aggs : Relation.Aggregate.t list }
      (** global aggregation — GROUP BY with no keys *)
  | Sort of { by : string; descending : bool }
  | Top_k of { by : string; descending : bool; k : int }
  | Udf of udf
  | While of { condition : loop_condition; max_iterations : int; body : graph }
  | Black_box of { backend_hint : string; description : string }
      (** operator only a specific native back-end can run (§4.1.3) *)

and udf = {
  udf_name : string;
  arity : int;
  fn : Relation.Table.t list -> Relation.Table.t;
  (** Schema of the UDF output given input schemas; needed for type
      inference through the DAG. *)
  out_schema : Relation.Schema.t list -> Relation.Schema.t;
  (** Relative per-byte processing cost vs. a SELECT (cost model input). *)
  cost_factor : float;
}

and node = {
  id : int;
  kind : kind;
  inputs : int list;  (** node ids, in argument order *)
  output : string;    (** name of the relation this node produces *)
}

and graph = {
  nodes : node list;       (** in increasing-id order *)
  outputs : int list;      (** ids of nodes whose relations are workflow results *)
  loop_carried : string list;
      (** for WHILE bodies only: relation names rebound between
          iterations (body inputs consumed and re-produced each round) *)
}

(** Number of inputs the operator consumes. [None] for UDFs (checked
    against [udf.arity]) and WHILE (its body determines it). *)
val expected_arity : kind -> int option

(** Short name used in plans, costs tables and rendered code. *)
val kind_name : kind -> string

(** One-line description including parameters. *)
val describe : kind -> string

(** Whether the operator can only shrink its input (selective) — the
    conservative data-size bound of §5.2 merges these eagerly. *)
val selective : kind -> bool

(** Whether the operator can grow its output beyond its inputs
    (generative: JOIN, CROSS, UNION, UDF, WHILE). *)
val generative : kind -> bool

(** Whether the operator forces a shuffle (group/join boundary) in a
    MapReduce-style engine — at most one of these per MapReduce job. *)
val needs_shuffle : kind -> bool

(** All aggregations of the operator are associative (combiner-friendly);
    vacuously true for non-aggregating operators. Drives the improved
    Naiad GROUP BY of §6.2 and idiom selection in §4.3.1. *)
val associative_aggregation : kind -> bool

val pp_kind : Format.formatter -> kind -> unit
