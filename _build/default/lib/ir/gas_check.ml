(* classify which loop inputs each node's value derives from *)
type taint = {
  carried : bool;
  read_only : bool;
}

let taints (body : Operator.graph) =
  let table : (int, taint) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (n : Operator.node) ->
       let own =
         match n.kind with
         | Operator.Input { relation } ->
           if List.mem relation body.loop_carried then
             { carried = true; read_only = false }
           else { carried = false; read_only = true }
         | _ -> { carried = false; read_only = false }
       in
       let merged =
         List.fold_left
           (fun acc i ->
              let t = Hashtbl.find table i in
              { carried = acc.carried || t.carried;
                read_only = acc.read_only || t.read_only })
           own n.inputs
       in
       Hashtbl.replace table n.id merged)
    body.nodes;
  table

let reachable (g : Operator.graph) ~src ~dst =
  let visited = Hashtbl.create 8 in
  let rec visit id =
    id = dst
    || (not (Hashtbl.mem visited id))
       && begin
         Hashtbl.add visited id ();
         List.exists visit (Dag.consumers g id)
       end
  in
  visit src

let scatter_join (body : Operator.graph) =
  let table = taints body in
  List.find_map
    (fun (n : Operator.node) ->
       match n.kind, n.inputs with
       | Operator.Join _, [ l; r ] ->
         let tl = Hashtbl.find table l and tr = Hashtbl.find table r in
         let pure_carried t = t.carried && not t.read_only
         and pure_read_only t = t.read_only && not t.carried in
         if
           (pure_carried tl && pure_read_only tr)
           || (pure_read_only tl && pure_carried tr)
         then Some n.id
         else None
       | _ -> None)
    body.nodes

let body_is_vertex_centric (body : Operator.graph) =
  let has_cross =
    List.exists
      (fun (n : Operator.node) ->
         match n.kind with Operator.Cross -> true | _ -> false)
      body.nodes
  in
  (not has_cross)
  &&
  match scatter_join body with
  | None -> false
  | Some join_id ->
    List.exists
      (fun (n : Operator.node) ->
         match n.kind with
         | Operator.Group_by _ -> reachable body ~src:join_id ~dst:n.id
         | _ -> false)
      body.nodes

let graph_is_gas (g : Operator.graph) =
  let non_input =
    List.filter
      (fun (n : Operator.node) ->
         match n.kind with Operator.Input _ -> false | _ -> true)
      g.nodes
  in
  match non_input with
  | [ { Operator.kind = Operator.While { body; _ }; _ } ] ->
    body_is_vertex_centric body
  | _ -> false
