(** Structural test for the vertex-centric (GAS) idiom, shared by the
    engine admission checks and the core idiom recognizer (paper
    §4.3.1).

    A WHILE body is vertex-centric when it contains a scatter JOIN —
    one whose two sides cleanly separate the loop-carried vertex state
    from a read-only edge relation — feeding a gather GROUP BY, and
    uses no CROSS join (vertex engines cannot express one). This
    separation is what excludes look-alikes such as the k-means body,
    whose JOINs mix the carried centroids into both sides (§6.7: k-means
    cannot be expressed in vertex-centric systems). *)

(** [scatter_join body] — the id of a JOIN with one pure-carried side
    and one pure-read-only side, if any. *)
val scatter_join : Operator.graph -> int option

(** [body_is_vertex_centric body] — scatter JOIN present, a GROUP BY
    reachable from it, and no CROSS. *)
val body_is_vertex_centric : Operator.graph -> bool

(** [graph_is_gas g] — [g] consists of exactly one WHILE (plus INPUT
    nodes) with a vertex-centric body. *)
val graph_is_gas : Operator.graph -> bool
