exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

open Relation

let join_schema ls rs ~left_key ~right_key =
  if not (Schema.mem ls left_key) then
    type_error "JOIN: left key %S not in %s" left_key (Schema.to_string ls);
  if not (Schema.mem rs right_key) then
    type_error "JOIN: right key %S not in %s" right_key (Schema.to_string rs);
  let lt = Schema.column_type ls left_key
  and rt = Schema.column_type rs right_key in
  if lt <> rt then
    type_error "JOIN: key types differ (%s vs %s)" (Value.ty_to_string lt)
      (Value.ty_to_string rt);
  let keep =
    List.filter
      (fun (c : Schema.column) -> c.name <> right_key)
      (Schema.columns rs)
  in
  if keep = [] then ls else Schema.concat ls (Schema.make keep)

let group_schema schema ~keys ~aggs =
  let key_cols =
    List.map
      (fun k ->
         if not (Schema.mem schema k) then
           type_error "GROUP BY: unknown key %S in %s" k
             (Schema.to_string schema);
         { Schema.name = k; ty = Schema.column_type schema k })
      keys
  in
  let agg_cols =
    List.map
      (fun (a : Aggregate.t) ->
         let input_ty =
           match Aggregate.input_column a.fn with
           | None -> None
           | Some c ->
             if not (Schema.mem schema c) then
               type_error "aggregate over unknown column %S" c;
             Some (Schema.column_type schema c)
         in
         try { Schema.name = a.as_name;
               ty = Aggregate.result_type a.fn ~input:input_ty }
         with Invalid_argument msg -> type_error "%s" msg)
      aggs
  in
  try Schema.make (key_cols @ agg_cols)
  with Invalid_argument msg -> type_error "%s" msg

let rec infer ~catalog (g : Dag.t) =
  let schemas : (int, Schema.t) Hashtbl.t = Hashtbl.create 16 in
  let schema_of id =
    match Hashtbl.find_opt schemas id with
    | Some s -> s
    | None -> type_error "internal: schema of node %d not yet inferred" id
  in
  List.iter
    (fun (n : Operator.node) ->
       let input_schemas = List.map schema_of n.inputs in
       let out =
         match n.kind, input_schemas with
         | Operator.Input { relation }, [] -> (
           try catalog relation
           with Not_found -> type_error "unknown input relation %S" relation)
         | Operator.Select { pred }, [ s ] ->
           (try
              match Expr.infer s pred with
              | Value.Tbool -> s
              | ty ->
                type_error "SELECT predicate has type %s"
                  (Value.ty_to_string ty)
            with Expr.Type_error msg -> type_error "SELECT: %s" msg)
         | Operator.Project { columns }, [ s ] ->
           (try Schema.restrict s columns
            with Not_found ->
              type_error "PROJECT: unknown column among [%s] in %s"
                (String.concat ", " columns)
                (Schema.to_string s))
         | Operator.Map { target; expr }, [ s ] ->
           (try Schema.with_column s { Schema.name = target;
                                       ty = Expr.infer s expr }
            with Expr.Type_error msg -> type_error "MAP: %s" msg)
         | Operator.Join { left_key; right_key }, [ ls; rs ] ->
           join_schema ls rs ~left_key ~right_key
         | Operator.Left_outer_join { left_key; right_key; defaults },
           [ ls; rs ] ->
           let out = join_schema ls rs ~left_key ~right_key in
           let keep =
             List.filter
               (fun (c : Schema.column) -> c.name <> right_key)
               (Schema.columns rs)
           in
           if List.length defaults <> List.length keep then
             type_error
               "LEFT OUTER JOIN: %d defaults for %d right columns"
               (List.length defaults) (List.length keep);
           List.iter2
             (fun v (c : Schema.column) ->
                if Value.type_of v <> c.ty then
                  type_error
                    "LEFT OUTER JOIN: default for %s has type %s, \
                     expected %s"
                    c.name
                    (Value.ty_to_string (Value.type_of v))
                    (Value.ty_to_string c.ty))
             defaults keep;
           out
         | (Operator.Semi_join { left_key; right_key }
           | Operator.Anti_join { left_key; right_key }), [ ls; rs ] ->
           (* output schema is the left side; keys must exist and agree *)
           ignore (join_schema ls rs ~left_key ~right_key);
           ls
         | Operator.Cross, [ ls; rs ] -> Schema.concat ls rs
         | (Operator.Union | Operator.Intersect | Operator.Difference),
           [ ls; rs ] ->
           if not (Schema.equal ls rs) then
             type_error "%s: schemas differ: %s vs %s"
               (Operator.kind_name n.kind) (Schema.to_string ls)
               (Schema.to_string rs);
           ls
         | Operator.Distinct, [ s ] -> s
         | Operator.Group_by { keys; aggs }, [ s ] ->
           group_schema s ~keys ~aggs
         | Operator.Agg { aggs }, [ s ] -> group_schema s ~keys:[] ~aggs
         | (Operator.Sort { by; _ } | Operator.Top_k { by; _ }), [ s ] ->
           if not (Schema.mem s by) then
             type_error "%s: unknown column %S" (Operator.kind_name n.kind) by;
           s
         | Operator.Udf u, ss ->
           if List.length ss <> u.arity then
             type_error "UDF %s expects %d inputs, got %d" u.udf_name u.arity
               (List.length ss);
           u.out_schema ss
         | Operator.While { body; _ }, ss -> infer_while ~catalog body ss
         | Operator.Black_box { description; _ }, _ ->
           type_error "cannot type black-box operator (%s)" description
         | ( Operator.Select _ | Operator.Project _ | Operator.Map _
           | Operator.Join _ | Operator.Left_outer_join _
           | Operator.Semi_join _ | Operator.Anti_join _ | Operator.Cross
           | Operator.Union | Operator.Intersect | Operator.Difference
           | Operator.Distinct | Operator.Group_by _ | Operator.Agg _
           | Operator.Sort _ | Operator.Top_k _ | Operator.Input _ ), _ ->
           type_error "node %d (%s): wrong number of inputs" n.id
             (Operator.kind_name n.kind)
       in
       Hashtbl.replace schemas n.id out)
    g.nodes;
  schemas

and infer_while ~catalog body input_schemas =
  (* Bind the WHILE node's inputs positionally to the body's INPUT nodes
     (in body order); then type the body and check loop stability. *)
  let body_inputs = Dag.sources body in
  if List.length body_inputs <> List.length input_schemas then
    type_error "WHILE: body has %d inputs but node provides %d"
      (List.length body_inputs)
      (List.length input_schemas);
  let bound = Hashtbl.create 8 in
  List.iter2
    (fun (n : Operator.node) s ->
       match n.kind with
       | Operator.Input { relation } -> Hashtbl.replace bound relation s
       | _ -> assert false)
    body_inputs input_schemas;
  let body_catalog r =
    match Hashtbl.find_opt bound r with
    | Some s -> s
    | None -> catalog r
  in
  let body_schemas = infer ~catalog:body_catalog body in
  (* loop stability: carried relations keep their schema *)
  List.iter
    (fun carried ->
       let produced =
         List.find_map
           (fun id ->
              let n = Dag.node body id in
              if n.Operator.output = carried then
                Hashtbl.find_opt body_schemas id
              else None)
           body.outputs
       in
       match produced, Hashtbl.find_opt bound carried with
       | Some p, Some c when not (Schema.equal p c) ->
         type_error
           "WHILE: loop-carried relation %S changes schema across \
            iterations (%s -> %s)"
           carried (Schema.to_string c) (Schema.to_string p)
       | _ -> ())
    body.loop_carried;
  match body.outputs with
  | first :: _ -> Hashtbl.find body_schemas first
  | [] -> type_error "WHILE: body has no outputs"

let node_schema ~catalog g id =
  let schemas = infer ~catalog g in
  match Hashtbl.find_opt schemas id with
  | Some s -> s
  | None -> type_error "no node %d" id

let output_schemas ~catalog g =
  let schemas = infer ~catalog g in
  List.map
    (fun id ->
       let n = Dag.node g id in
       (n.Operator.output, Hashtbl.find schemas id))
    g.Operator.outputs
