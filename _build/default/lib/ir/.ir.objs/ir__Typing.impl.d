lib/ir/typing.ml: Aggregate Dag Expr Hashtbl List Operator Printf Relation Schema String Value
