lib/ir/builder.ml: Dag List Operator Printf
