lib/ir/gas_check.mli: Operator
