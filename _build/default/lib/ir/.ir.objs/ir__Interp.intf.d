lib/ir/interp.mli: Dag Hashtbl Operator Relation
