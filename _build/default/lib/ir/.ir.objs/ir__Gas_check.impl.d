lib/ir/gas_check.ml: Dag Hashtbl List Operator
