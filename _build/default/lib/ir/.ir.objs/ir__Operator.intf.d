lib/ir/operator.mli: Format Relation
