lib/ir/dag.ml: Buffer Format Hashtbl List Operator Printf String
