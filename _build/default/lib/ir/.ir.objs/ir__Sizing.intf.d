lib/ir/sizing.mli: Operator
