lib/ir/typing.mli: Dag Hashtbl Relation
