lib/ir/builder.mli: Operator Relation
