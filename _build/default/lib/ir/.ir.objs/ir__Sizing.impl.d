lib/ir/sizing.ml: List Operator
