lib/ir/operator.ml: Format List Printf Relation String
