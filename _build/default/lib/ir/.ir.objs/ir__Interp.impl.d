lib/ir/interp.ml: Array Dag Hashtbl Kernel List Operator Printf Relation Table
