lib/ir/dag.mli: Format Operator
