(** Figure 2 — query-processing micro-benchmarks on the 7-node local
    cluster (§2.1).

    (a) PROJECT: extract one column from two-column ASCII input,
    128 MB – 32 GB. Expected shape: Metis wins small inputs, Hadoop wins
    at scale, Spark trails Hadoop (RDD materialization with no re-use),
    Lindi-on-Naiad suffers from its single reader thread, Hive adds
    query-layer overhead over Hadoop.

    (b) JOIN: an asymmetric LiveJournal vertices-by-edges join (serial C
    wins — the computation cannot amortize distributed overheads) and a
    symmetric 39M-by-39M row join producing ~1.5B rows (Hadoop wins on
    parallel HDFS streaming). *)

let project_sizes_mb = [ 128.; 512.; 2048.; 8192.; 32768. ]

type system_under_test = {
  sut_name : string;
  backend : Engines.Backend.t;
  mode : Musketeer.Executor.mode;
}

let project_systems =
  [ { sut_name = "Hive"; backend = Engines.Backend.Hadoop;
      mode = Musketeer.Executor.Native_frontend };
    { sut_name = "Hadoop"; backend = Engines.Backend.Hadoop;
      mode = Musketeer.Executor.Baseline };
    { sut_name = "Spark"; backend = Engines.Backend.Spark;
      mode = Musketeer.Executor.Baseline };
    { sut_name = "Metis"; backend = Engines.Backend.Metis;
      mode = Musketeer.Executor.Baseline };
    { sut_name = "Lindi"; backend = Engines.Backend.Naiad;
      mode = Musketeer.Executor.Native_frontend } ]

let join_systems =
  { sut_name = "C"; backend = Engines.Backend.Serial_c;
    mode = Musketeer.Executor.Baseline }
  :: project_systems

let project_makespans ~size_mb =
  let m = Common.musketeer_for Common.local7 in
  let hdfs =
    Common.hdfs_with
      [ ("lines", Workloads.Datagen.two_column_ascii ~modeled_mb:size_mb ()) ]
  in
  let graph = Workloads.Workflows.project_only () in
  List.map
    (fun sut ->
       ( sut.sut_name,
         Common.run_forced ~mode:sut.mode m ~workflow:"project" ~hdfs
           ~backend:sut.backend graph ))
    project_systems

let join_makespans ~symmetric =
  let m = Common.musketeer_for Common.local7 in
  let hdfs =
    if symmetric then
      Common.hdfs_with
        [ ("left", Workloads.Datagen.uniform_pairs ~rows:39_000_000 ());
          ("right",
           Workloads.Datagen.uniform_pairs ~seed:14 ~rows:39_000_000 ()) ]
    else begin
      let l, r = Workloads.Datagen.asymmetric_join_tables () in
      Common.hdfs_with [ ("left", l); ("right", r) ]
    end
  in
  let graph = Workloads.Workflows.simple_join () in
  List.map
    (fun sut ->
       ( sut.sut_name,
         Common.run_forced ~mode:sut.mode m ~workflow:"join" ~hdfs
           ~backend:sut.backend graph ))
    join_systems

let run ppf =
  let rows =
    List.map
      (fun size_mb ->
         Printf.sprintf "%.1f GB" (size_mb /. 1024.)
         :: List.map (fun (_, r) -> Common.cell r) (project_makespans ~size_mb))
      project_sizes_mb
  in
  Common.table ppf ~title:"Figure 2a: PROJECT makespan (7-node local cluster)"
    ~header:("input" :: List.map (fun s -> s.sut_name) project_systems)
    rows;
  let join_row label symmetric =
    label
    :: List.map (fun (_, r) -> Common.cell r) (join_makespans ~symmetric)
  in
  Common.table ppf ~title:"Figure 2b: JOIN makespan (7-node local cluster)"
    ~header:("workload" :: List.map (fun s -> s.sut_name) join_systems)
    [ join_row "asymmetric (LJ)" false; join_row "symmetric (39Mx39M)" true ]
