let instances : (int * int, Musketeer.t) Hashtbl.t = Hashtbl.create 8

let musketeer_for (cluster : Engines.Cluster.t) =
  let key = (cluster.nodes, cluster.cores_per_node) in
  match Hashtbl.find_opt instances key with
  | Some m -> m
  | None ->
    let m = Musketeer.create ~cluster () in
    Hashtbl.replace instances key m;
    m

let local7 = Engines.Cluster.local_seven

let ec2 nodes = Engines.Cluster.ec2 ~nodes

(* ---- loaders ---- *)

let hdfs_with bindings =
  let hdfs = Engines.Hdfs.create () in
  List.iter (fun (name, sized) -> Workloads.Datagen.put hdfs name sized) bindings;
  hdfs

let load_tpch ~scale_factor =
  let lineitem, part = Workloads.Datagen.tpch ~scale_factor () in
  hdfs_with [ ("lineitem", lineitem); ("part", part) ]

let load_purchases ~users =
  hdfs_with [ ("purchases", Workloads.Datagen.purchases ~users ()) ]

let load_netflix ~movies =
  let ratings, movie_list = Workloads.Datagen.netflix ~movies () in
  hdfs_with [ ("ratings", ratings); ("movies", movie_list) ]

let load_graph spec =
  let edges, vertices = Workloads.Datagen.graph_tables spec ~edges:() in
  hdfs_with [ ("edges", edges); ("vertices", vertices) ]

let load_communities () =
  let a, b = Workloads.Datagen.community_pair () in
  hdfs_with [ ("edges_a", a); ("edges_b", b) ]

let load_sssp () =
  let edges, seeds =
    Workloads.Datagen.sssp_tables Workloads.Datagen.twitter ()
  in
  hdfs_with [ ("sssp_edges", edges); ("sssp_seeds", seeds) ]

let load_kmeans ~points ~k =
  let pts, cents = Workloads.Datagen.kmeans_points ~points ~k () in
  hdfs_with [ ("points", pts); ("centroids", cents) ]

(* ---- execution helpers ---- *)

let describe_plan (p : Musketeer.Partitioner.plan) =
  String.concat "+"
    (List.map
       (fun (backend, ids) ->
          Printf.sprintf "%s[%d]" (Engines.Backend.name backend)
            (List.length ids))
       p.Musketeer.Partitioner.jobs)

(* operator-by-operator profiling run into a private history, so the
   subsequent measurement sees a deployed workflow in steady state *)
let steady_state m ~workflow ~hdfs graph =
  let m' = Musketeer.with_history m (Musketeer.History.create ()) in
  (match Musketeer.plan m' ~merging:false ~workflow ~hdfs graph with
   | Some (plan, g') ->
     (match
        Musketeer.execute_plan ~record_history:true m' ~workflow
          ~hdfs:(Engines.Hdfs.snapshot hdfs) ~graph:g' plan
      with
      | Ok _ | Error _ -> ())
   | None -> ());
  m'

let run_forced ?mode ?(profiled = true) m ~workflow ~hdfs ~backend graph =
  let m = if profiled then steady_state m ~workflow ~hdfs graph else m in
  match
    Musketeer.plan m ~backends:[ backend ] ~workflow ~hdfs graph
  with
  | None ->
    Error (Printf.sprintf "%s cannot run it" (Engines.Backend.name backend))
  | Some (plan, g') -> (
    match
      Musketeer.execute_plan ?mode ~record_history:false m ~workflow
        ~hdfs:(Engines.Hdfs.snapshot hdfs) ~graph:g' plan
    with
    | Ok result -> Ok result.Musketeer.Executor.makespan_s
    | Error e -> Error (Engines.Report.error_to_string e))

let run_auto ?mode ?merging ?(profiled = true) m ~workflow ~hdfs graph =
  let m = if profiled then steady_state m ~workflow ~hdfs graph else m in
  match Musketeer.plan m ?merging ~workflow ~hdfs graph with
  | None -> Error "no feasible plan"
  | Some (plan, g') -> (
    match
      Musketeer.execute_plan ?mode ~record_history:false m ~workflow
        ~hdfs:(Engines.Hdfs.snapshot hdfs) ~graph:g' plan
    with
    | Ok result ->
      Ok (result.Musketeer.Executor.makespan_s, describe_plan plan)
    | Error e -> Error (Engines.Report.error_to_string e))

let run_with_plan ?mode m ~workflow ~hdfs ~graph jobs =
  let plan = { Musketeer.Partitioner.jobs; cost_s = 0. } in
  match
    Musketeer.execute_plan ?mode ~record_history:false m ~workflow
      ~hdfs:(Engines.Hdfs.snapshot hdfs) ~graph plan
  with
  | Ok result -> Ok result.Musketeer.Executor.makespan_s
  | Error e -> Error (Engines.Report.error_to_string e)

(* ---- formatting ---- *)

let table ppf ~title ~header rows =
  let all = header :: rows in
  let columns = List.length header in
  let width i =
    List.fold_left
      (fun acc row ->
         match List.nth_opt row i with
         | Some cell -> max acc (String.length cell)
         | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let print_row row =
    List.iteri
      (fun i cell ->
         let w = List.nth widths i in
         if i = 0 then Format.fprintf ppf "%-*s" w cell
         else Format.fprintf ppf "  %*s" w cell)
      row;
    Format.pp_print_newline ppf ()
  in
  Format.fprintf ppf "@.== %s ==@." title;
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let seconds s =
  if s >= 100. then Printf.sprintf "%.0fs" s else Printf.sprintf "%.1fs" s

let cell = function
  | Ok s -> seconds s
  | Error msg ->
    if String.length msg > 18 then String.sub msg 0 18 else msg
