(** Ablations of the design choices DESIGN.md calls out, beyond the
    paper's own figures:

    - code-generation optimizations (shared scans + look-ahead type
      inference) on/off, per back-end;
    - Naiad's vertex-level GROUP BY vs the collect-based one, isolated
      from the I/O effects Figure 7 mixes in;
    - conservative first-run bounds vs full history: how the same
      workflow's plan tightens (§5.2);
    - the DP heuristic's single linearization vs multiple orders vs the
      exhaustive optimum on a Figure-16-shaped workflow (§8);
    - the two extension engines (Giraph, X-Stream) against the paper's
      graph engines on PageRank. *)

open Musketeer

(* (a) codegen optimizations per backend on TPC-H Q17 *)
let codegen_ablation ppf =
  let m = Common.musketeer_for (Common.ec2 16) in
  let hdfs = Common.load_tpch ~scale_factor:10 in
  let graph = Workloads.Workflows.tpch_q17 () in
  let rows =
    List.map
      (fun (name, backend) ->
         let run mode =
           Common.cell
             (Common.run_forced ~mode m ~workflow:"q17" ~hdfs ~backend graph)
         in
         [ name; run Executor.Baseline; run Executor.Generated;
           run Executor.Generated_naive ])
      [ ("Hadoop", Engines.Backend.Hadoop); ("Spark", Engines.Backend.Spark);
        ("Naiad", Engines.Backend.Naiad) ]
  in
  Common.table ppf
    ~title:"Ablation: codegen optimizations (TPC-H Q17, EC2-16)"
    ~header:[ "back-end"; "hand-tuned"; "generated"; "no shared scans" ]
    rows

(* (b) Naiad GROUP BY implementation, everything else optimized *)
let group_by_ablation ppf =
  let m = Common.musketeer_for (Common.ec2 16) in
  let hdfs = Common.load_tpch ~scale_factor:10 in
  let graph = Workloads.Workflows.tpch_q17 () in
  let time vertex_group_by =
    let job =
      Engines.Job.make
        ~options:
          { Engines.Job.optimized_options with
            naiad_vertex_group_by = vertex_group_by }
        ~label:"q17" ~backend:Engines.Backend.Naiad graph
    in
    match
      Engines.Registry.run Engines.Backend.Naiad ~cluster:(Musketeer.cluster m)
        ~hdfs:(Engines.Hdfs.snapshot hdfs) job
    with
    | Ok r -> Common.seconds r.Engines.Report.makespan_s
    | Error e -> Engines.Report.error_to_string e
  in
  Common.table ppf
    ~title:"Ablation: Naiad GROUP BY implementation (TPC-H Q17)"
    ~header:[ "implementation"; "makespan" ]
    [ [ "vertex-level (associative decomposition)"; time true ];
      [ "collect-on-one-machine (Lindi)"; time false ] ]

(* (c) conservative first-run plan vs full-history plan *)
let history_ablation ppf =
  let m = Common.musketeer_for (Common.ec2 16) in
  let hdfs = Common.load_tpch ~scale_factor:10 in
  let graph = Workloads.Workflows.tpch_q17 () in
  let fresh = Musketeer.with_history m (Musketeer.History.create ()) in
  let describe m' =
    match Musketeer.plan m' ~workflow:"q17" ~hdfs graph with
    | None -> ("-", "-")
    | Some (plan, _) ->
      (Common.describe_plan plan, Common.seconds plan.Partitioner.cost_s)
  in
  let cold_plan, cold_cost = describe fresh in
  (* profiling run, then re-plan *)
  let hist = Musketeer.History.create () in
  let warm = Musketeer.with_history m hist in
  (match Musketeer.plan warm ~merging:false ~workflow:"q17" ~hdfs graph with
   | Some (p, g') ->
     ignore
       (Musketeer.execute_plan warm ~workflow:"q17"
          ~hdfs:(Engines.Hdfs.snapshot hdfs) ~graph:g' p)
   | None -> ());
  let warm_plan, warm_cost = describe warm in
  Common.table ppf
    ~title:"Ablation: conservative first run vs full history (TPC-H Q17)"
    ~header:[ "condition"; "plan"; "estimated cost" ]
    [ [ "no history (conservative bounds)"; cold_plan; cold_cost ];
      [ "full history (merges unlocked)"; warm_plan; warm_cost ] ]

(* (d) partitioning algorithm quality on a Figure-16-shaped DAG *)
let fig16_ablation ppf =
  let m = Common.musketeer_for (Common.ec2 16) in
  let profile = Musketeer.profile m in
  (* the §8 example: a deep branch ordered before the JOIN+PROJECT that
     MapReduce could merge *)
  let graph =
    Frontends.Beer.parse
      "s1 = SELECT k, v FROM f1 WHERE v > 0;\n\
       g1 = SELECT k, SUM(v) AS v FROM s1 GROUP BY k;\n\
       s2 = SELECT k, v FROM f2 WHERE v < 100;\n\
       j1 = s2 JOIN f3 ON k = k;\n\
       p1 = SELECT k, v FROM j1;\n\
       out = g1 JOIN p1 ON k = k;\n\
       OUTPUT out;\n"
  in
  let hdfs =
    Common.hdfs_with
      [ ("f1", Workloads.Datagen.uniform_pairs ~rows:5_000_000 ());
        ("f2", Workloads.Datagen.uniform_pairs ~seed:15 ~rows:5_000_000 ());
        ("f3", Workloads.Datagen.uniform_pairs ~seed:16 ~rows:5_000_000 ()) ]
  in
  (* full history so the conservative-bound rule is not what separates
     the algorithms *)
  let hist = Musketeer.History.create () in
  List.iter
    (fun (n : Ir.Operator.node) ->
       Musketeer.History.record hist ~workflow:"fig16" ~node_id:n.id
         ~output_mb:60.)
    graph.Ir.Operator.nodes;
  let m' = Musketeer.with_history m hist in
  let est = Musketeer.estimator m' ~workflow:"fig16" ~hdfs graph in
  let backends = [ Engines.Backend.Hadoop ] in
  let cost algo label =
    match algo ~profile ~est ~backends graph with
    | Some plan ->
      [ label;
        Printf.sprintf "%d jobs" (List.length plan.Partitioner.jobs);
        Common.seconds plan.Partitioner.cost_s ]
    | None -> [ label; "-"; "-" ]
  in
  Common.table ppf
    ~title:"Ablation: partitioning algorithms on the Fig-16 workflow (Hadoop)"
    ~header:[ "algorithm"; "jobs"; "estimated cost" ]
    [ cost Partitioner.dynamic "DP (single linearization)";
      cost
        (fun ~profile ~est ~backends g ->
           Partitioner.dynamic_multi_order ~orders:24 ~profile ~est ~backends
             g)
        "DP (multiple linearizations)";
      cost Partitioner.exhaustive "exhaustive (optimal)" ]

(* (e) extension engines on PageRank *)
let extension_engines_ablation ppf =
  let graph = Workloads.Workflows.pagerank_gas () in
  let rows =
    List.map
      (fun (name, backend, nodes) ->
         let m = Common.musketeer_for (Common.ec2 nodes) in
         let hdfs = Common.load_graph Workloads.Datagen.twitter in
         [ name; string_of_int nodes;
           Common.cell
             (Common.run_forced m ~workflow:"pagerank" ~hdfs ~backend graph)
         ])
      [ ("PowerGraph", Engines.Backend.Power_graph, 16);
        ("Giraph (ext)", Engines.Backend.Giraph, 16);
        ("GraphChi", Engines.Backend.Graph_chi, 1);
        ("X-Stream (ext)", Engines.Backend.X_stream, 1) ]
  in
  Common.table ppf
    ~title:"Ablation: extension engines, PageRank on Twitter"
    ~header:[ "engine"; "nodes"; "makespan" ]
    rows

(* (f) failure recovery cost per engine (Table 3's FT column) *)
let failure_ablation ppf =
  let m = Common.musketeer_for (Common.ec2 16) in
  let hdfs = Common.load_tpch ~scale_factor:10 in
  let graph = Workloads.Workflows.tpch_q17 () in
  let rows =
    List.filter_map
      (fun backend ->
         match
           Musketeer.plan m ~backends:[ backend ] ~workflow:"q17" ~hdfs graph
         with
         | None -> None
         | Some (plan, g') -> (
           match
             Musketeer.execute_plan ~record_history:false m ~workflow:"q17"
               ~hdfs:(Engines.Hdfs.snapshot hdfs) ~graph:g' plan
           with
           | Error _ -> None
           | Ok result -> (
             match result.Executor.reports with
             | [] -> None
             | first :: _ ->
               let overhead =
                 Engines.Faults.failure_overhead backend first
                   ~at_fraction:0.5
               in
               Some
                 [ Engines.Backend.name backend;
                   (match Engines.Faults.recovery_of backend with
                    | Engines.Faults.Restart -> "restart"
                    | Engines.Faults.Reexecute_tasks g ->
                      Printf.sprintf "re-exec (unit %.0f%%)" (100. *. g));
                   Printf.sprintf "%+.0f%%" (100. *. (overhead -. 1.)) ])))
      [ Engines.Backend.Hadoop; Engines.Backend.Spark;
        Engines.Backend.Naiad; Engines.Backend.Metis;
        Engines.Backend.Serial_c ]
  in
  Common.table ppf
    ~title:
      "Ablation: cost of a worker failure at 50% of the first Q17 job \
       (Table 3 FT column)"
    ~header:[ "engine"; "recovery"; "makespan overhead" ]
    rows

let run ppf =
  codegen_ablation ppf;
  group_by_ablation ppf;
  history_ablation ppf;
  fig16_ablation ppf;
  extension_engines_ablation ppf;
  failure_ablation ppf
