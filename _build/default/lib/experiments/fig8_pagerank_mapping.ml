(** Figure 8 — Musketeer's dynamic mapping for PageRank vs the
    best-in-class hand-written system at 1, 16 and 100 nodes (§6.2),
    plus resource efficiency on the Twitter graph (8c).

    Expected: at each scale Musketeer's automatic choice lands within a
    small factor of the best stand-alone baseline (GraphChi on one
    node; PowerGraph or Naiad at 16; Naiad at 100), and its resource
    efficiency tracks the best baselines'. *)

let baseline_systems nodes =
  if nodes = 1 then
    [ ("GraphChi", Engines.Backend.Graph_chi);
      ("Spark", Engines.Backend.Spark);
      ("Hadoop", Engines.Backend.Hadoop) ]
  else
    [ ("GraphLINQ", Engines.Backend.Naiad);
      ("PowerGraph", Engines.Backend.Power_graph);
      ("Spark", Engines.Backend.Spark);
      ("Hadoop", Engines.Backend.Hadoop) ]

type scale_result = {
  nodes : int;
  best_name : string;
  best_s : float;
  musketeer_s : float;
  musketeer_plan : string;
}

let at_scale ~spec nodes =
  let m = Common.musketeer_for (Common.ec2 nodes) in
  let hdfs = Common.load_graph spec in
  let graph = Workloads.Workflows.pagerank_gas () in
  let baselines =
    List.filter_map
      (fun (name, backend) ->
         match
           Common.run_forced ~mode:Musketeer.Executor.Baseline m
             ~workflow:"pagerank" ~hdfs ~backend graph
         with
         | Ok s -> Some (name, s)
         | Error _ -> None)
      (baseline_systems nodes)
  in
  let best_name, best_s =
    List.fold_left
      (fun (bn, bs) (name, s) -> if s < bs then (name, s) else (bn, bs))
      ("-", infinity) baselines
  in
  match Common.run_auto m ~workflow:"pagerank" ~hdfs graph with
  | Ok (musketeer_s, musketeer_plan) ->
    Some { nodes; best_name; best_s; musketeer_s; musketeer_plan }
  | Error _ -> None

(* aggregate node-seconds normalized to the best single-node run (§6.1) *)
let efficiency ~single_node_best ~makespan ~nodes =
  single_node_best /. (makespan *. float_of_int nodes)

let run ppf =
  let scales = [ 1; 16; 100 ] in
  let graph_section title spec =
    let rows =
      List.filter_map (fun nodes -> at_scale ~spec nodes) scales
    in
    Common.table ppf ~title
      ~header:
        [ "nodes"; "best baseline"; "baseline"; "Musketeer"; "plan" ]
      (List.map
         (fun r ->
            [ string_of_int r.nodes; r.best_name; Common.seconds r.best_s;
              Common.seconds r.musketeer_s; r.musketeer_plan ])
         rows);
    rows
  in
  let _ = graph_section "Figure 8a: PageRank Orkut" Workloads.Datagen.orkut in
  let twitter_rows =
    graph_section "Figure 8b: PageRank Twitter" Workloads.Datagen.twitter
  in
  (* 8c: resource efficiency on Twitter, normalized to the fastest
     single-node execution *)
  match
    List.find_opt (fun (r : scale_result) -> r.nodes = 1) twitter_rows
  with
  | None -> ()
  | Some single ->
    let single_node_best = single.best_s in
    Common.table ppf
      ~title:"Figure 8c: resource efficiency, PageRank Twitter"
      ~header:[ "nodes"; "best baseline"; "Musketeer" ]
      (List.map
         (fun (r : scale_result) ->
            [ string_of_int r.nodes;
              Printf.sprintf "%.0f%%"
                (100. *. efficiency ~single_node_best ~makespan:r.best_s
                   ~nodes:r.nodes);
              Printf.sprintf "%.0f%%"
                (100.
                 *. efficiency ~single_node_best ~makespan:r.musketeer_s
                      ~nodes:r.nodes) ])
         twitter_rows)
