(** Figure 12 — impact of operator merging and shared scans (§6.5).

    (a) top-shopper (filter, aggregate, threshold — one mergeable scan)
    with operator merging on/off, varying the user count;
    (b) the same ablation on cross-community PageRank.

    Expected: a one-off saving from avoided per-job overheads plus a
    linear benefit from sharing the scan. *)

let user_counts = [ 10_000_000; 20_000_000; 30_000_000; 40_000_000;
                    50_000_000 ]

let top_shopper_row users =
  let m = Common.musketeer_for (Common.ec2 16) in
  let hdfs = Common.load_purchases ~users in
  let graph = Workloads.Workflows.top_shopper () in
  let merged = Common.run_auto m ~workflow:"top-shopper" ~hdfs graph in
  let unmerged =
    Common.run_auto ~merging:false m ~workflow:"top-shopper" ~hdfs graph
  in
  (users, merged, unmerged)

let cross_community_row () =
  let m = Common.musketeer_for Common.local7 in
  let hdfs = Common.load_communities () in
  let graph = Workloads.Workflows.cross_community_pagerank () in
  let merged = Common.run_auto m ~workflow:"cross-community" ~hdfs graph in
  let unmerged =
    Common.run_auto ~merging:false m ~workflow:"cross-community" ~hdfs graph
  in
  (merged, unmerged)

let fst_cell = function
  | Ok (s, _) -> Common.seconds s
  | Error e -> e

let run ppf =
  Common.table ppf
    ~title:"Figure 12a: top-shopper, operator merging on/off (EC2)"
    ~header:[ "users"; "merged"; "unmerged" ]
    (List.map
       (fun users ->
          let users_, merged, unmerged = top_shopper_row users in
          [ Printf.sprintf "%dM" (users_ / 1_000_000); fst_cell merged;
            fst_cell unmerged ])
       user_counts);
  let merged, unmerged = cross_community_row () in
  Common.table ppf
    ~title:"Figure 12b: cross-community PageRank, merging on/off (local)"
    ~header:[ "configuration"; "makespan" ]
    [ [ "merged"; fst_cell merged ]; [ "unmerged"; fst_cell unmerged ] ]
