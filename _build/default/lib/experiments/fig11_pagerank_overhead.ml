(** Figure 11 — generated-code overhead for five-iteration PageRank on
    the Twitter graph, for every back-end that can run it (§6.4).
    Average overhead stays below 30%. *)

let backends =
  [ ("Hadoop", Engines.Backend.Hadoop, 100);
    ("Spark", Engines.Backend.Spark, 100);
    ("Naiad", Engines.Backend.Naiad, 100);
    ("PowerGraph", Engines.Backend.Power_graph, 16);
    ("GraphChi", Engines.Backend.Graph_chi, 1) ]

let overheads () =
  List.map
    (fun (name, backend, nodes) ->
       let m = Common.musketeer_for (Common.ec2 nodes) in
       let hdfs = Common.load_graph Workloads.Datagen.twitter in
       let graph = Workloads.Workflows.pagerank_gas () in
       let generated =
         Common.run_forced ~mode:Musketeer.Executor.Generated m
           ~workflow:"pagerank" ~hdfs ~backend graph
       and baseline =
         Common.run_forced ~mode:Musketeer.Executor.Baseline m
           ~workflow:"pagerank" ~hdfs ~backend graph
       in
       (name, nodes, generated, baseline))
    backends

let run ppf =
  Common.table ppf
    ~title:"Figure 11: PageRank (Twitter) generated-code overhead"
    ~header:[ "back-end"; "nodes"; "generated"; "baseline"; "overhead" ]
    (List.map
       (fun (name, nodes, generated, baseline) ->
          let pct =
            match generated, baseline with
            | Ok g, Ok b -> Printf.sprintf "%+.1f%%" (100. *. ((g -. b) /. b))
            | _ -> "-"
          in
          [ name; string_of_int nodes; Common.cell generated;
            Common.cell baseline; pct ])
       (overheads ()))
