(** Shared infrastructure for the paper-reproduction experiments:
    calibrated Musketeer instances per cluster (memoized — calibration
    is the one-off profiling of §5.2), HDFS loaders for the standard
    workloads, forced-backend execution helpers and table printing. *)

(** Calibrated Musketeer instance for a cluster (memoized on the node
    count and hardware profile). Each call returns a {b fresh-history}
    view unless [shared_history] is set. *)
val musketeer_for : Engines.Cluster.t -> Musketeer.t

(** The paper's two testbeds. *)
val local7 : Engines.Cluster.t

val ec2 : int -> Engines.Cluster.t

(* ---- loaders (fresh HDFS per call) ---- *)

val hdfs_with : (string * Workloads.Datagen.sized) list -> Engines.Hdfs.t

val load_tpch : scale_factor:int -> Engines.Hdfs.t

val load_purchases : users:int -> Engines.Hdfs.t

val load_netflix : movies:int -> Engines.Hdfs.t

(** vertices + edges for PageRank on the given graph. *)
val load_graph : Workloads.Datagen.graph_spec -> Engines.Hdfs.t

val load_communities : unit -> Engines.Hdfs.t

val load_sssp : unit -> Engines.Hdfs.t

val load_kmeans : points:int -> k:int -> Engines.Hdfs.t

(* ---- execution helpers ---- *)

(** [run_forced m ~mode ~workflow ~hdfs ~backend graph] — plan the whole
    workflow onto one backend and execute on a snapshot of [hdfs].
    Returns the makespan, or [Error] when the backend cannot run it.

    By default ([profiled] = true) an operator-by-operator profiling run
    populates a private history first, so the measurement reflects a
    deployed workflow in steady state (full merge opportunities, §5.2);
    pass [~profiled:false] to measure a cold first run, as Figure 14's
    no-history condition does. *)
val run_forced :
  ?mode:Musketeer.Executor.mode -> ?profiled:bool -> Musketeer.t ->
  workflow:string -> hdfs:Engines.Hdfs.t -> backend:Engines.Backend.t ->
  Ir.Operator.graph -> (float, string) result

(** Auto-mapped execution (all backends available). Returns makespan and
    the plan description. See {!run_forced} for [profiled]. *)
val run_auto :
  ?mode:Musketeer.Executor.mode -> ?merging:bool -> ?profiled:bool ->
  Musketeer.t -> workflow:string -> hdfs:Engines.Hdfs.t ->
  Ir.Operator.graph -> (float * string, string) result

(** Execute a hand-constructed plan (for the §6.3 combination study). *)
val run_with_plan :
  ?mode:Musketeer.Executor.mode -> Musketeer.t -> workflow:string ->
  hdfs:Engines.Hdfs.t -> graph:Ir.Operator.graph ->
  (Engines.Backend.t * int list) list -> (float, string) result

(** One-line plan rendering ("Hadoop[3]+Naiad[1]"). *)
val describe_plan : Musketeer.Partitioner.plan -> string

(* ---- output formatting ---- *)

(** [table ppf ~title ~header rows] prints an aligned text table. *)
val table :
  Format.formatter -> title:string -> header:string list ->
  string list list -> unit

val seconds : float -> string

(** "err: ..." cell for failed runs. *)
val cell : (float, string) result -> string
