(** Figure 15 — automated mapping on two previously unseen workflows
    (§6.7): single-source shortest paths on the Twitter graph with edge
    costs, and k-means over 100M random points (100 clusters, 2-D,
    5 iterations).

    SSSP fits the vertex-centric paradigm; k-means does not (its CROSS
    JOIN is deliberately kept, §6.7 footnote — it drives Spark out of
    memory). Musketeer's automated choice (marked with a club, as in
    the paper) should land on Naiad for both. *)

let backends =
  [ ("Hadoop", Engines.Backend.Hadoop); ("Spark", Engines.Backend.Spark);
    ("Naiad", Engines.Backend.Naiad);
    ("PowerGraph", Engines.Backend.Power_graph);
    ("GraphChi", Engines.Backend.Graph_chi);
    ("Metis", Engines.Backend.Metis) ]

let study ~workflow ~hdfs ~graph =
  let m = Common.musketeer_for (Common.ec2 16) in
  let per_backend =
    List.map
      (fun (name, backend) ->
         (name, Common.run_forced m ~workflow ~hdfs ~backend graph))
      backends
  in
  let choice =
    match Musketeer.plan m ~workflow ~hdfs graph with
    | Some (plan, _) -> Common.describe_plan plan
    | None -> "-"
  in
  (per_backend, choice)

let run ppf =
  let section title ~workflow ~hdfs ~graph =
    let per_backend, choice = study ~workflow ~hdfs ~graph in
    Common.table ppf ~title ~header:[ "back-end"; "makespan" ]
      (List.map
         (fun (name, r) ->
            let marker =
              (* the club marks Musketeer's automated choice *)
              if
                String.length choice >= String.length name
                && String.sub choice 0 (String.length name) = name
              then " *club*"
              else ""
            in
            [ name ^ marker; Common.cell r ])
         per_backend);
    Format.fprintf ppf "Musketeer's automated choice: %s@." choice
  in
  section "Figure 15a: SSSP on Twitter with costs (EC2, 5 rounds shown)"
    ~workflow:"sssp" ~hdfs:(Common.load_sssp ())
    ~graph:(Workloads.Workflows.sssp ~max_rounds:8 ());
  section "Figure 15b: k-means, 100M points, k=100 (EC2)"
    ~workflow:"kmeans"
    ~hdfs:(Common.load_kmeans ~points:100_000_000 ~k:100)
    ~graph:(Workloads.Workflows.kmeans ~iterations:5 ())
