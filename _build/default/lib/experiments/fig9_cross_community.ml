(** Figure 9 — combining back-end execution engines within the hybrid
    cross-community PageRank workflow (§6.3): the edge sets of two web
    communities are intersected (batch phase), then PageRank runs on
    the common sub-graph (iterative phase).

    Single-system executions are compared against Musketeer-explored
    combinations (general-purpose engine for the batch phase,
    specialized engine for the iterative one). The "Lindi & GraphLINQ"
    configuration keeps both phases inside one Naiad job, avoiding the
    HDFS round-trip between phases entirely — the best result, as in
    the paper. *)

let graph = Workloads.Workflows.cross_community_pagerank ()

let op_ids =
  List.filter_map
    (fun (n : Ir.Operator.node) ->
       match n.kind with Ir.Operator.Input _ -> None | _ -> Some n.id)
    graph.Ir.Operator.nodes

let while_id =
  List.find_map
    (fun (n : Ir.Operator.node) ->
       match n.kind with Ir.Operator.While _ -> Some n.id | _ -> None)
    graph.Ir.Operator.nodes
  |> Option.get

let batch_ids = List.filter (fun id -> id <> while_id) op_ids

(* split a node set into jobs a MapReduce-style engine accepts
   (at most one shuffle per job, §4.3.2) *)
let split_for backend ids =
  if Engines.Backend.general_purpose backend then [ ids ]
  else begin
    let jobs = ref [] and current = ref [] and shuffles = ref 0 in
    List.iter
      (fun id ->
         let kind = (Ir.Dag.node graph id).Ir.Operator.kind in
         let s = if Ir.Operator.needs_shuffle kind then 1 else 0 in
         if !shuffles + s > 1 then begin
           jobs := List.rev !current :: !jobs;
           current := [ id ];
           shuffles := s
         end
         else begin
           current := id :: !current;
           shuffles := !shuffles + s
         end)
      ids;
    if !current <> [] then jobs := List.rev !current :: !jobs;
    List.rev !jobs
  end

type combo = {
  combo_name : string;
  jobs : (Engines.Backend.t * int list) list;
  mode : Musketeer.Executor.mode;
}

let combo name ?(mode = Musketeer.Executor.Generated) batch loop =
  { combo_name = name;
    jobs =
      List.map (fun ids -> (batch, ids)) (split_for batch batch_ids)
      @ [ (loop, [ while_id ]) ];
    mode }

let single name ?(mode = Musketeer.Executor.Generated) backend =
  { combo_name = name;
    jobs =
      List.map (fun ids -> (backend, ids)) (split_for backend batch_ids)
      @ [ (backend, [ while_id ]) ];
    mode }

let one_naiad_job name mode =
  { combo_name = name; jobs = [ (Engines.Backend.Naiad, op_ids) ]; mode }

let combos () =
  [ single "Hadoop only" Engines.Backend.Hadoop;
    single "Spark only" Engines.Backend.Spark;
    (* stock Lindi materializes between the phases *)
    { combo_name = "Lindi only";
      jobs =
        [ (Engines.Backend.Naiad, batch_ids);
          (Engines.Backend.Naiad, [ while_id ]) ];
      mode = Musketeer.Executor.Native_frontend };
    combo "Hadoop + PowerGraph" Engines.Backend.Hadoop
      Engines.Backend.Power_graph;
    combo "Hadoop + GraphChi" Engines.Backend.Hadoop
      Engines.Backend.Graph_chi;
    combo "Spark + PowerGraph" Engines.Backend.Spark
      Engines.Backend.Power_graph;
    combo "Hadoop + Naiad" Engines.Backend.Hadoop Engines.Backend.Naiad;
    one_naiad_job "Lindi & GraphLINQ (one Naiad job)"
      Musketeer.Executor.Generated ]

let makespans () =
  let m = Common.musketeer_for Common.local7 in
  let hdfs = Common.load_communities () in
  List.map
    (fun c ->
       ( c.combo_name,
         Common.run_with_plan ~mode:c.mode m ~workflow:"cross-community"
           ~hdfs ~graph c.jobs ))
    (combos ())

let run ppf =
  Common.table ppf
    ~title:"Figure 9: cross-community PageRank, combined back-ends (local)"
    ~header:[ "configuration"; "makespan" ]
    (List.map
       (fun (name, r) -> [ name; Common.cell r ])
       (makespans ()))
