(** Figure 10 — generated-code overhead on the NetFlix movie
    recommendation workflow (§6.4): Musketeer's generated jobs vs
    hand-optimized baselines for the three general-purpose systems, as
    the number of movies used for prediction grows.

    Expected: overhead under ~30% everywhere; near zero on Naiad;
    largest on Spark, where the simple type-inference keeps one extra
    pass over the data. *)

let movie_counts = [ 4000; 8000; 12000; 17000 ]

let backends =
  [ ("Hadoop", Engines.Backend.Hadoop); ("Spark", Engines.Backend.Spark);
    ("Naiad", Engines.Backend.Naiad) ]

let overhead ~movies ~backend =
  let m = Common.musketeer_for (Common.ec2 100) in
  let hdfs = Common.load_netflix ~movies in
  let graph = Workloads.Workflows.netflix () in
  let generated =
    Common.run_forced ~mode:Musketeer.Executor.Generated m ~workflow:"netflix"
      ~hdfs ~backend graph
  and baseline =
    Common.run_forced ~mode:Musketeer.Executor.Baseline m ~workflow:"netflix"
      ~hdfs ~backend graph
  in
  match generated, baseline with
  | Ok g, Ok b -> Ok (g, b, 100. *. ((g -. b) /. b))
  | Error e, _ | _, Error e -> Error e

let run ppf =
  let rows =
    List.concat_map
      (fun movies ->
         List.map
           (fun (name, backend) ->
              match overhead ~movies ~backend with
              | Ok (g, b, pct) ->
                [ string_of_int movies; name; Common.seconds g;
                  Common.seconds b; Printf.sprintf "%+.1f%%" pct ]
              | Error e -> [ string_of_int movies; name; e; "-"; "-" ])
           backends)
      movie_counts
  in
  Common.table ppf
    ~title:"Figure 10: NetFlix workflow, Musketeer vs hand-optimized (EC2, 100 nodes)"
    ~header:[ "movies"; "back-end"; "generated"; "baseline"; "overhead" ]
    rows
