(** Figure 3 — five-iteration PageRank on Orkut (3M/117M) and Twitter
    (43M/1.4B), across systems and cluster scales (§2.2).

    Expected shape: graph-oriented paradigms dominate; GraphLINQ on
    Naiad is fastest at 100 nodes; PowerGraph beats it at 16 nodes
    thanks to its vertex-cut sharding; GraphChi on one machine stays
    remarkably close; general-purpose systems (Spark, Hadoop) trail,
    Hadoop catastrophically (one job chain per iteration). *)

type config = {
  cfg_name : string;
  backend : Engines.Backend.t;
  nodes : int;
}

let configs =
  [ { cfg_name = "Hadoop@16"; backend = Engines.Backend.Hadoop; nodes = 16 };
    { cfg_name = "Hadoop@100"; backend = Engines.Backend.Hadoop; nodes = 100 };
    { cfg_name = "Spark@16"; backend = Engines.Backend.Spark; nodes = 16 };
    { cfg_name = "Spark@100"; backend = Engines.Backend.Spark; nodes = 100 };
    { cfg_name = "GraphLINQ@16"; backend = Engines.Backend.Naiad; nodes = 16 };
    { cfg_name = "GraphLINQ@100"; backend = Engines.Backend.Naiad;
      nodes = 100 };
    { cfg_name = "PowerGraph@16"; backend = Engines.Backend.Power_graph;
      nodes = 16 };
    { cfg_name = "PowerGraph@100"; backend = Engines.Backend.Power_graph;
      nodes = 100 };
    { cfg_name = "GraphChi@1"; backend = Engines.Backend.Graph_chi;
      nodes = 1 } ]

let makespan ~spec ~cfg =
  let m = Common.musketeer_for (Common.ec2 cfg.nodes) in
  let hdfs = Common.load_graph spec in
  Common.run_forced ~mode:Musketeer.Executor.Baseline m ~workflow:"pagerank"
    ~hdfs ~backend:cfg.backend
    (Workloads.Workflows.pagerank_gas ())

let rows () =
  List.map
    (fun cfg ->
       ( cfg.cfg_name,
         makespan ~spec:Workloads.Datagen.orkut ~cfg,
         makespan ~spec:Workloads.Datagen.twitter ~cfg ))
    configs

let run ppf =
  Common.table ppf
    ~title:"Figure 3: PageRank makespan, 5 iterations (EC2 m1.xlarge)"
    ~header:[ "system"; "Orkut (3M/117M)"; "Twitter (43M/1.4B)" ]
    (List.map
       (fun (name, orkut, twitter) ->
          [ name; Common.cell orkut; Common.cell twitter ])
       (rows ()))
