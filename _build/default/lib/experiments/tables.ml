(** Table 1 — the calibrated rate parameters of Musketeer's cost
    function (§5.2): PULL, LOAD, PROCESS and PUSH per back-end, plus the
    per-job overhead and shuffle bandwidth the simulators expose. Also
    Table 3 — the feature matrix of contemporary data processing
    systems — and the §7 student-baseline anecdote. *)

module Profile = Musketeer.Profile

let table1 ppf =
  Format.fprintf ppf
    "@.== Table 1: calibrated rate parameters (7-node local cluster) ==@.";
  Profile.pp ppf (Musketeer.profile (Common.musketeer_for Common.local7));
  Format.fprintf ppf
    "@.== Table 1 (cont.): calibrated rates (EC2, 100 nodes) ==@.";
  Profile.pp ppf (Musketeer.profile (Common.musketeer_for (Common.ec2 100)))

let table3 ppf =
  Format.fprintf ppf
    "@.== Table 3: contemporary data processing systems (* = supported) \
     ==@.";
  Format.fprintf ppf "%-18s %-22s %-8s %-9s %-9s %-6s %-5s %s@." "system"
    "paradigm" "unit" "iteration" "sharding" "work" "FT" "language";
  List.iter
    (fun row -> Format.fprintf ppf "%a@." Engines.Capabilities.pp_row row)
    Engines.Capabilities.all

(* §7: the simple JOIN workflow, Musketeer-generated Hadoop job vs an
   average-programmer baseline (mis-tuned configuration, no combiner,
   per-operator scans). The paper reports 608 s vs 223 s. *)
let student_join ppf =
  let m = Common.musketeer_for Common.local7 in
  let l, r = Workloads.Datagen.asymmetric_join_tables () in
  let hdfs =
    Common.hdfs_with
      [ ("left", { l with modeled_mb = l.modeled_mb *. 4. });
        ("right", { r with modeled_mb = r.modeled_mb *. 4. }) ]
  in
  let graph = Workloads.Workflows.simple_join () in
  let musketeer =
    Common.run_forced ~mode:Musketeer.Executor.Generated m ~workflow:"join"
      ~hdfs ~backend:Engines.Backend.Hadoop graph
  in
  (* the student's job: extra passes and badly tuned processing *)
  let student =
    let job =
      Engines.Job.make
        ~options:
          { Engines.Job.scan_passes = 7; process_multiplier = 5.5;
            shuffle_multiplier = 4.;
            naiad_parallel_io = false; naiad_vertex_group_by = false }
        ~label:"student-join" ~backend:Engines.Backend.Hadoop graph
    in
    match
      Engines.Registry.run Engines.Backend.Hadoop
        ~cluster:(Musketeer.cluster m)
        ~hdfs:(Engines.Hdfs.snapshot hdfs) job
    with
    | Ok report -> Ok report.Engines.Report.makespan_s
    | Error e -> Error (Engines.Report.error_to_string e)
  in
  Common.table ppf
    ~title:"Section 7: JOIN workflow, Musketeer vs student baseline (Hadoop)"
    ~header:[ "implementation"; "makespan" ]
    [ [ "best student baseline"; Common.cell student ];
      [ "Musketeer-generated"; Common.cell musketeer ] ]
