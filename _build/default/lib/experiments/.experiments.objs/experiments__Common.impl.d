lib/experiments/common.ml: Engines Format Hashtbl List Musketeer Printf String Workloads
