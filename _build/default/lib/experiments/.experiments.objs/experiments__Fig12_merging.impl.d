lib/experiments/fig12_merging.ml: Common List Printf Workloads
