lib/experiments/tables.ml: Common Engines Format List Musketeer Workloads
