lib/experiments/fig3_pagerank_motivation.ml: Common Engines List Musketeer Workloads
