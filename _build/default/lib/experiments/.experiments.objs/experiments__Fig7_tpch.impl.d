lib/experiments/fig7_tpch.ml: Common Engines List Musketeer Printf Workloads
