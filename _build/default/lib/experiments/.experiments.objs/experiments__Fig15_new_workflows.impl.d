lib/experiments/fig15_new_workflows.ml: Common Engines Format List Musketeer String Workloads
