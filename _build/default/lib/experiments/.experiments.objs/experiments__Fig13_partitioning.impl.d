lib/experiments/fig13_partitioning.ml: Common Engines Ir List Musketeer Printf Unix Workloads
