lib/experiments/fig8_pagerank_mapping.ml: Common Engines List Musketeer Printf Workloads
