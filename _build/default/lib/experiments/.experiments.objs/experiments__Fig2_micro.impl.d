lib/experiments/fig2_micro.ml: Common Engines List Musketeer Printf Workloads
