lib/experiments/fig9_cross_community.ml: Common Engines Ir List Musketeer Option Workloads
