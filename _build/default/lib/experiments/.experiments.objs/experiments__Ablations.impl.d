lib/experiments/ablations.ml: Common Engines Executor Frontends Ir List Musketeer Partitioner Printf Workloads
