lib/experiments/fig11_pagerank_overhead.ml: Common Engines List Musketeer Printf Workloads
