lib/experiments/fig14_mapping_quality.ml: Common Engines Format Ir List Musketeer Printf Workloads
