lib/experiments/fig10_netflix_overhead.ml: Common Engines List Musketeer Printf Workloads
