lib/experiments/common.mli: Engines Format Ir Musketeer Workloads
