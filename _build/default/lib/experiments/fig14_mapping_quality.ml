(** Figure 14 — quality of Musketeer's automated back-end choices
    (§6.7): 33 configurations of the paper's workflows at varying input
    sizes, compared against the ground-truth best mapping.

    For each configuration we establish ground truth by running every
    feasible single-backend mapping, then score four deciders:
    - Musketeer with no workflow history (first run);
    - Musketeer with partial history (half the operators profiled);
    - Musketeer with full history (an operator-by-operator profiling
      run first, as the paper does);
    - the fixed decision tree of {!Musketeer.Mapper}.

    A choice within 10% of the best option is "good", within 30%
    "reasonable", otherwise "poor". Expected: ~50% good without
    history, >80% with partial history, all good with full history,
    and the decision tree clearly worse. *)

type config = {
  cfg_label : string;
  workflow : string;
  graph : unit -> Ir.Operator.graph;
  hdfs : unit -> Engines.Hdfs.t;
  cluster : Engines.Cluster.t;
}

let configs () =
  let c16 = Common.ec2 16 in
  let tpch sf =
    { cfg_label = Printf.sprintf "tpch-q17 sf%d" sf; workflow = "q17";
      graph = Workloads.Workflows.tpch_q17;
      hdfs = (fun () -> Common.load_tpch ~scale_factor:sf); cluster = c16 }
  and shopper users =
    { cfg_label = Printf.sprintf "top-shopper %gM"
        (float_of_int users /. 1e6);
      workflow = "top-shopper"; graph = Workloads.Workflows.top_shopper;
      hdfs = (fun () -> Common.load_purchases ~users); cluster = c16 }
  and netflix movies =
    { cfg_label = Printf.sprintf "netflix %dk movies" (movies / 1000);
      workflow = "netflix"; graph = Workloads.Workflows.netflix;
      hdfs = (fun () -> Common.load_netflix ~movies); cluster = c16 }
  and pagerank spec nodes =
    { cfg_label =
        Printf.sprintf "pagerank %s @%d" spec.Workloads.Datagen.spec_name
          nodes;
      workflow = "pagerank";
      graph = (fun () -> Workloads.Workflows.pagerank_gas ());
      hdfs = (fun () -> Common.load_graph spec); cluster = Common.ec2 nodes }
  and project mb =
    { cfg_label = Printf.sprintf "project %.1fGB" (mb /. 1024.);
      workflow = "project"; graph = Workloads.Workflows.project_only;
      hdfs =
        (fun () ->
           Common.hdfs_with
             [ ("lines",
                Workloads.Datagen.two_column_ascii ~modeled_mb:mb ()) ]);
      cluster = Common.local7 }
  and join symmetric =
    { cfg_label = (if symmetric then "join symmetric" else "join asymmetric");
      workflow = "join"; graph = Workloads.Workflows.simple_join;
      hdfs =
        (fun () ->
           if symmetric then
             Common.hdfs_with
               [ ("left", Workloads.Datagen.uniform_pairs ~rows:39_000_000 ());
                 ("right",
                  Workloads.Datagen.uniform_pairs ~seed:14 ~rows:39_000_000 ()) ]
           else begin
             let l, r = Workloads.Datagen.asymmetric_join_tables () in
             Common.hdfs_with [ ("left", l); ("right", r) ]
           end);
      cluster = Common.local7 }
  and sssp () =
    { cfg_label = "sssp twitter"; workflow = "sssp";
      graph = (fun () -> Workloads.Workflows.sssp ~max_rounds:8 ());
      hdfs = Common.load_sssp; cluster = c16 }
  and kmeans points =
    { cfg_label = Printf.sprintf "kmeans %dM pts" (points / 1_000_000);
      workflow = "kmeans";
      graph = (fun () -> Workloads.Workflows.kmeans ~iterations:3 ());
      hdfs = (fun () -> Common.load_kmeans ~points ~k:100); cluster = c16 }
  in
  [ tpch 5; tpch 10; tpch 25; tpch 50; tpch 75; tpch 100;
    shopper 10_000; shopper 100_000; shopper 1_000_000; shopper 10_000_000;
    shopper 50_000_000;
    netflix 1000; netflix 4000; netflix 8000; netflix 17000;
    pagerank Workloads.Datagen.orkut 16;
    pagerank Workloads.Datagen.orkut 100;
    pagerank Workloads.Datagen.twitter 16;
    pagerank Workloads.Datagen.twitter 100;
    pagerank Workloads.Datagen.livejournal 16;
    project 128.; project 512.; project 2048.; project 8192.;
    project 32768.;
    join false; join true;
    sssp ();
    kmeans 1_000_000; kmeans 10_000_000; kmeans 100_000_000;
    shopper 25_000_000; netflix 12000 ]

type quality =
  | Good
  | Reasonable
  | Poor
  | Failed

let classify ~best s =
  if s <= 1.10 *. best then Good
  else if s <= 1.30 *. best then Reasonable
  else Poor

let input_mb_of hdfs graph =
  List.fold_left
    (fun acc r ->
       if Engines.Hdfs.mem hdfs r then acc +. Engines.Hdfs.modeled_mb hdfs r
       else acc)
    0.
    (Ir.Dag.input_relations graph)

(* evaluate the four deciders on one configuration *)
let evaluate cfg =
  let base = Common.musketeer_for cfg.cluster in
  let hdfs = cfg.hdfs () in
  let graph = cfg.graph () in
  (* ground truth: every feasible single-backend mapping *)
  let truth =
    List.filter_map
      (fun backend ->
         match
           Common.run_forced (Musketeer.with_history base (Musketeer.History.create ()))
             ~workflow:cfg.workflow ~hdfs ~backend graph
         with
         | Ok s -> Some s
         | Error _ -> None)
      Engines.Backend.all
  in
  match truth with
  | [] -> None
  | _ ->
    let best = List.fold_left min infinity truth in
    let score m =
      match
        Common.run_auto ~profiled:false m ~workflow:cfg.workflow ~hdfs graph
      with
      | Ok (s, _) -> classify ~best s
      | Error _ -> Failed
    in
    (* no history *)
    let fresh = Musketeer.with_history base (Musketeer.History.create ()) in
    let no_history = score fresh in
    (* build full history with an operator-by-operator profiling run *)
    let full_hist = Musketeer.History.create () in
    let profiled = Musketeer.with_history base full_hist in
    (match
       Musketeer.plan profiled ~merging:false ~workflow:cfg.workflow ~hdfs
         graph
     with
     | Some (plan, g') ->
       ignore
         (Musketeer.execute_plan profiled ~workflow:cfg.workflow
            ~hdfs:(Engines.Hdfs.snapshot hdfs) ~graph:g' plan)
     | None -> ());
    let full_history = score profiled in
    (* partial history = the upstream half of the operators, as an
       incrementally-acquired (interrupted) profiling run would leave *)
    let max_id =
      List.fold_left
        (fun acc (n : Ir.Operator.node) -> max acc n.id)
        0 graph.Ir.Operator.nodes
    in
    let partial =
      Musketeer.with_history base
        (Musketeer.History.filtered full_hist ~keep:(fun id ->
             2 * id <= max_id + 2))
    in
    let partial_history = score partial in
    (* decision tree *)
    let tree_backend =
      Musketeer.Mapper.decision_tree ~cluster:cfg.cluster
        ~input_mb:(input_mb_of hdfs graph) graph
    in
    let tree =
      match
        Common.run_forced ~profiled:false fresh ~workflow:cfg.workflow ~hdfs
          ~backend:tree_backend graph
      with
      | Ok s -> classify ~best s
      | Error _ -> Failed
    in
    Some (cfg.cfg_label, no_history, partial_history, full_history, tree)

let quality_to_string = function
  | Good -> "good"
  | Reasonable -> "reasonable"
  | Poor -> "poor"
  | Failed -> "failed"

let summarize results pick =
  let total = List.length results in
  let count q =
    List.length (List.filter (fun r -> pick r = q) results)
  in
  Printf.sprintf "%d%% good / %d%% reasonable / %d%% poor"
    (100 * count Good / total)
    (100 * count Reasonable / total)
    (100 * (count Poor + count Failed) / total)

let run ppf =
  let results = List.filter_map evaluate (configs ()) in
  Common.table ppf
    ~title:
      (Printf.sprintf "Figure 14: automated mapping quality (%d configs)"
         (List.length results))
    ~header:[ "configuration"; "no history"; "partial"; "full"; "dec. tree" ]
    (List.map
       (fun (label, n, p, f, t) ->
          [ label; quality_to_string n; quality_to_string p;
            quality_to_string f; quality_to_string t ])
       results);
  Format.fprintf ppf "@.summary:@.";
  Format.fprintf ppf "  no history : %s@."
    (summarize results (fun (_, n, _, _, _) -> n));
  Format.fprintf ppf "  partial    : %s@."
    (summarize results (fun (_, _, p, _, _) -> p));
  Format.fprintf ppf "  full       : %s@."
    (summarize results (fun (_, _, _, f, _) -> f));
  Format.fprintf ppf "  dec. tree  : %s@."
    (summarize results (fun (_, _, _, _, t) -> t))
