(** Figure 7 — TPC-H query 17 on EC2, scale factors 10–100 (§6.2).

    Four series:
    - Hive executing on its native Hadoop back-end (three-plus jobs, the
      MapReduce paradigm forces one shuffle per job);
    - Musketeer mapping the same Hive workflow to Naiad (~2x faster:
      one job, shared scans);
    - Lindi's native Naiad execution (poor scaling: single-reader I/O
      and a non-associative collect-based GROUP BY);
    - Musketeer's generated Naiad code from the Lindi workflow (same as
      from Hive — the front-end no longer matters), up to ~9x faster
      than stock Lindi at scale 100. *)

let scale_factors = [ 10; 25; 50; 75; 100 ]

let series ~scale_factor =
  let m = Common.musketeer_for (Common.ec2 16) in
  let hdfs = Common.load_tpch ~scale_factor in
  let graph = Workloads.Workflows.tpch_q17 () in
  let hive_on_hadoop =
    Common.run_forced ~mode:Musketeer.Executor.Native_frontend m
      ~workflow:"q17" ~hdfs ~backend:Engines.Backend.Hadoop graph
  and musketeer_naiad =
    Common.run_forced ~mode:Musketeer.Executor.Generated m ~workflow:"q17"
      ~hdfs ~backend:Engines.Backend.Naiad graph
  and lindi_native =
    Common.run_forced ~mode:Musketeer.Executor.Native_frontend m
      ~workflow:"q17" ~hdfs ~backend:Engines.Backend.Naiad graph
  in
  (hive_on_hadoop, musketeer_naiad, lindi_native)

let run ppf =
  let rows =
    List.map
      (fun scale_factor ->
         let hive, musketeer, lindi = series ~scale_factor in
         let speedup =
           match lindi, musketeer with
           | Ok l, Ok m when m > 0. -> Printf.sprintf "%.1fx" (l /. m)
           | _ -> "-"
         in
         [ string_of_int scale_factor; Common.cell hive;
           Common.cell musketeer; Common.cell lindi; speedup ])
      scale_factors
  in
  Common.table ppf ~title:"Figure 7: TPC-H Q17 makespan (EC2, 16 nodes)"
    ~header:
      [ "scale"; "Hive/Hadoop"; "Musketeer->Naiad"; "Lindi native";
        "Musketeer vs Lindi" ]
    rows
