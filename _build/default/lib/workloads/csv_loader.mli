(** Loading user relations from comma-separated files — the CLI's
    [run-file] path. A relation is described as

    {v name=path.csv:col1:type1,col2:type2,... v}

    with types [int], [float], [string], [bool]. The modeled HDFS size
    defaults to the file's actual size; append [@<mb>] to override it
    (e.g. [purchases=p.csv:uid:int,amount:int@2048] models 2 GB). *)

exception Bad_spec of string

(** [parse_schema "uid:int,amount:int"] — raises {!Bad_spec}. *)
val parse_schema : string -> Relation.Schema.t

(** [load_csv ~schema path] reads comma-separated rows (no header; a
    leading [#] comments a line out). Raises {!Bad_spec} on rows that do
    not match the schema. *)
val load_csv : schema:Relation.Schema.t -> string -> Relation.Table.t

(** [parse_binding "name=path:schema[@mb]"] — loads the file and returns
    the relation name with its sized table. *)
val parse_binding : string -> string * Datagen.sized

(** [load_bindings hdfs specs] applies {!parse_binding} to each spec and
    stores the results. *)
val load_bindings : Engines.Hdfs.t -> string list -> unit
