open Relation

type sized = {
  table : Table.t;
  modeled_mb : float;
}

let put hdfs name { table; modeled_mb } =
  Engines.Hdfs.put hdfs name ~modeled_mb table

let mb_of_bytes bytes = bytes /. (1024. *. 1024.)

let col name ty = { Schema.name; ty }

(* ---- micro-benchmarks ---- *)

let words =
  [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot"; "golf";
     "hotel"; "india"; "juliet"; "kilo"; "lima"; "mike"; "november" |]

let two_column_schema =
  Schema.make [ col "key" Value.Tstring; col "value" Value.Tstring ]

let two_column_ascii ?(sample_rows = 2000) ?(seed = 11) ~modeled_mb () =
  let state = Random.State.make [| seed |] in
  let word () = words.(Random.State.int state (Array.length words)) in
  let rows =
    Array.init sample_rows (fun i ->
        [| Value.Str (Printf.sprintf "%s%d" (word ()) i);
           Value.Str (word ()) |])
  in
  { table = Table.create_unchecked two_column_schema rows; modeled_mb }

let pair_schema =
  Schema.make [ col "key" Value.Tint; col "value" Value.Tint ]

let uniform_pairs ?(sample_rows = 2500) ?(seed = 13) ~rows () =
  let state = Random.State.make [| seed |] in
  (* key domain sized so the symmetric join blows up like the paper's
     39M x 39M -> 1.5B rows / 29 GB (~20x row amplification) *)
  let domain = max 1 (sample_rows / 14) in
  let data =
    Array.init sample_rows (fun i ->
        [| Value.Int (Random.State.int state domain); Value.Int i |])
  in
  { table = Table.create_unchecked pair_schema data;
    modeled_mb = mb_of_bytes (float_of_int rows *. 16.) }

(* power-law target: pick vertex v with probability ~ 1/(v+1) *)
let zipf state n =
  let u = Random.State.float state 1. in
  let v =
    int_of_float (Float.pow (float_of_int n) u) - 1
  in
  max 0 (min (n - 1) v)

let asymmetric_join_tables ?(seed = 19) () =
  let state = Random.State.make [| seed |] in
  let left_rows = 600 in
  let left =
    Array.init left_rows (fun i ->
        [| Value.Int i; Value.Int (Random.State.int state 1000) |])
  in
  let right =
    Array.init 2400 (fun i ->
        [| Value.Int (zipf state left_rows); Value.Int i |])
  in
  ( { table = Table.create_unchecked pair_schema left;
      modeled_mb = mb_of_bytes (4_800_000. *. 20.) },
    { table = Table.create_unchecked pair_schema right;
      modeled_mb = mb_of_bytes (69_000_000. *. 15.) } )

(* ---- graphs ---- *)

type graph_spec = {
  spec_name : string;
  vertices : int;
  edges : int;
}

let livejournal = { spec_name = "LiveJournal"; vertices = 4_800_000; edges = 69_000_000 }

let orkut = { spec_name = "Orkut"; vertices = 3_000_000; edges = 117_000_000 }

let twitter = { spec_name = "Twitter"; vertices = 43_000_000; edges = 1_400_000_000 }

let web_community =
  { spec_name = "WebCommunity"; vertices = 5_800_000; edges = 82_000_000 }

let edge_schema = Schema.make [ col "src" Value.Tint; col "dst" Value.Tint ]

let vertex_schema =
  Schema.make
    [ col "id" Value.Tint; col "vertex_value" Value.Tfloat;
      col "vertex_degree" Value.Tint ]

let edge_bytes = 15.

let vertex_bytes = 22.

let sample_edge_rows ~state ~sample_vertices ~sample_edges =
  (* ring backbone: every vertex has one in- and one out-edge *)
  let ring =
    List.init sample_vertices (fun i ->
        [| Value.Int i; Value.Int ((i + 1) mod sample_vertices) |])
  in
  let extra =
    List.init (max 0 (sample_edges - sample_vertices)) (fun _ ->
        let src = zipf state sample_vertices in
        let dst = Random.State.int state sample_vertices in
        [| Value.Int src; Value.Int dst |])
  in
  Array.of_list (ring @ extra)

let degrees_of_edges rows sample_vertices =
  let deg = Array.make sample_vertices 0 in
  Array.iter
    (fun row ->
       match row.(0) with
       | Value.Int src -> deg.(src) <- deg.(src) + 1
       | _ -> ())
    rows;
  deg

let graph_tables ?(sample_vertices = 400) ?(seed = 17) spec ~edges:() =
  let state = Random.State.make [| seed |] in
  let ratio =
    float_of_int spec.edges /. float_of_int (max 1 spec.vertices)
  in
  let sample_edges =
    max sample_vertices
      (int_of_float (float_of_int sample_vertices *. ratio /. 4.))
  in
  let sample_edges = min sample_edges (sample_vertices * 12) in
  let rows = sample_edge_rows ~state ~sample_vertices ~sample_edges in
  let deg = degrees_of_edges rows sample_vertices in
  let vertex_rows =
    Array.init sample_vertices (fun i ->
        [| Value.Int i; Value.Float 1.0; Value.Int (max 1 deg.(i)) |])
  in
  ( { table = Table.create_unchecked edge_schema rows;
      modeled_mb = mb_of_bytes (float_of_int spec.edges *. edge_bytes) },
    { table = Table.create_unchecked vertex_schema vertex_rows;
      modeled_mb = mb_of_bytes (float_of_int spec.vertices *. vertex_bytes) } )

let community_pair ?(sample_vertices = 400) ?(seed = 23) () =
  let mk extra_seed =
    let st = Random.State.make [| seed + extra_seed |] in
    let sample_edges = sample_vertices * 8 in
    sample_edge_rows ~state:st ~sample_vertices ~sample_edges
  in
  let a = mk 0 in
  (* the second community shares the ring backbone and ~40% of the rest *)
  let b_own = mk 1 in
  let shared_count = Array.length a * 2 / 5 in
  let shared = Array.sub a 0 shared_count in
  let b =
    Array.append shared
      (Array.sub b_own 0 (Array.length b_own - shared_count))
  in
  ( { table = Table.create_unchecked edge_schema a;
      modeled_mb = mb_of_bytes (float_of_int livejournal.edges *. edge_bytes) },
    { table = Table.create_unchecked edge_schema b;
      modeled_mb =
        mb_of_bytes (float_of_int web_community.edges *. edge_bytes) } )

let sssp_edge_schema =
  Schema.make
    [ col "src" Value.Tint; col "dst" Value.Tint; col "weight" Value.Tint ]

let sssp_seed_schema =
  Schema.make [ col "node" Value.Tint; col "cost" Value.Tint ]

let sssp_tables ?(sample_vertices = 300) ?(seed = 29) spec () =
  let state = Random.State.make [| seed |] in
  let plain =
    sample_edge_rows ~state ~sample_vertices
      ~sample_edges:(sample_vertices * 6)
  in
  let rows =
    Array.map
      (fun row ->
         Array.append row [| Value.Int (1 + Random.State.int state 9) |])
      plain
  in
  ( { table = Table.create_unchecked sssp_edge_schema rows;
      modeled_mb =
        mb_of_bytes (float_of_int spec.edges *. (edge_bytes +. 4.)) },
    { table =
        Table.create_unchecked sssp_seed_schema
          [| [| Value.Int 0; Value.Int 0 |] |];
      modeled_mb = 0.001 } )

(* ---- relational workloads ---- *)

let lineitem_schema =
  Schema.make
    [ col "l_partkey" Value.Tint; col "l_quantity" Value.Tint;
      col "l_extendedprice" Value.Tfloat ]

let part_schema =
  Schema.make
    [ col "p_partkey" Value.Tint; col "p_brand" Value.Tstring;
      col "p_container" Value.Tstring ]

let brands = [| "Brand#11"; "Brand#23"; "Brand#34"; "Brand#45"; "Brand#55" |]

let containers = [| "MED BOX"; "JUMBO PKG"; "LG CASE"; "SM PACK" |]

let tpch ?(sample_rows = 3000) ?(seed = 31) ~scale_factor () =
  let state = Random.State.make [| seed |] in
  let parts = max 20 (sample_rows / 15) in
  let lineitem_rows =
    Array.init sample_rows (fun _ ->
        [| Value.Int (Random.State.int state parts);
           Value.Int (1 + Random.State.int state 50);
           Value.Float (Random.State.float state 1000.) |])
  in
  let part_rows =
    Array.init parts (fun i ->
        [| Value.Int i;
           Value.Str (brands.(Random.State.int state (Array.length brands)));
           Value.Str
             (containers.(Random.State.int state (Array.length containers)))
        |])
  in
  let sf = float_of_int scale_factor in
  ( { table = Table.create_unchecked lineitem_schema lineitem_rows;
      modeled_mb = 720. *. sf },
    { table = Table.create_unchecked part_schema part_rows;
      modeled_mb = 30. *. sf } )

let purchase_schema =
  Schema.make
    [ col "uid" Value.Tint; col "region" Value.Tstring;
      col "amount" Value.Tint ]

let regions = [| "EU"; "US"; "APAC"; "LATAM" |]

let purchases ?(sample_rows = 3000) ?(seed = 37) ~users () =
  let state = Random.State.make [| seed |] in
  let sample_users = max 10 (sample_rows / 5) in
  let rows =
    Array.init sample_rows (fun _ ->
        [| Value.Int (Random.State.int state sample_users);
           Value.Str (regions.(Random.State.int state (Array.length regions)));
           Value.Int (1 + Random.State.int state 500) |])
  in
  { table = Table.create_unchecked purchase_schema rows;
    (* ~5 purchases per user, 30 bytes each *)
    modeled_mb = mb_of_bytes (float_of_int users *. 5. *. 30.) }

let rating_schema =
  Schema.make
    [ col "user" Value.Tint; col "movie" Value.Tint;
      col "rating" Value.Tint ]

let movie_schema =
  Schema.make [ col "movie" Value.Tint; col "genre" Value.Tstring ]

let genres = [| "drama"; "comedy"; "action"; "documentary"; "scifi" |]

let netflix ?(sample_rows = 2500) ?(seed = 41) ~movies () =
  let state = Random.State.make [| seed |] in
  let sample_movies = max 5 (min movies 120) in
  let sample_users = max 20 (sample_rows / 12) in
  let rating_rows =
    Array.init sample_rows (fun _ ->
        [| Value.Int (Random.State.int state sample_users);
           Value.Int (Random.State.int state sample_movies);
           Value.Int (1 + Random.State.int state 5) |])
  in
  let movie_rows =
    Array.init sample_movies (fun i ->
        [| Value.Int i;
           Value.Str (genres.(Random.State.int state (Array.length genres)))
        |])
  in
  (* ratings volume scales with the fraction of the 17k movies used *)
  let fraction = float_of_int movies /. 17_000. in
  ( { table = Table.create_unchecked rating_schema rating_rows;
      modeled_mb = 2560. *. Float.min 1. fraction },
    { table = Table.create_unchecked movie_schema movie_rows;
      modeled_mb = 0.5 *. Float.min 1. fraction } )

let point_schema =
  Schema.make
    [ col "pid" Value.Tint; col "px" Value.Tfloat; col "py" Value.Tfloat ]

let centroid_schema =
  Schema.make
    [ col "cid" Value.Tint; col "cx" Value.Tfloat; col "cy" Value.Tfloat ]

let kmeans_points ?(sample_rows = 1200) ?(seed = 43) ~points ~k () =
  let state = Random.State.make [| seed |] in
  let point_rows =
    Array.init sample_rows (fun i ->
        [| Value.Int i; Value.Float (Random.State.float state 100.);
           Value.Float (Random.State.float state 100.) |])
  in
  let centroid_rows =
    Array.init k (fun i ->
        [| Value.Int i; Value.Float (Random.State.float state 100.);
           Value.Float (Random.State.float state 100.) |])
  in
  ( { table = Table.create_unchecked point_schema point_rows;
      modeled_mb = mb_of_bytes (float_of_int points *. 24.) },
    { table = Table.create_unchecked centroid_schema centroid_rows;
      modeled_mb = mb_of_bytes (float_of_int k *. 24.) } )
