open Relation

(* ---------------- TPC-H Q17 (HiveQL) ---------------- *)

let tpch_q17_hive =
  "SELECT l_partkey, AVG(l_quantity) AS avg_qty FROM lineitem \
   GROUP BY l_partkey AS part_avg;\n\
   part JOIN part_avg ON p_partkey = l_partkey AS part_join;\n\
   SELECT p_partkey, avg_qty FROM part_join \
   WHERE p_brand = 'Brand#23' AS branded;\n\
   lineitem JOIN branded ON l_partkey = p_partkey AS li_branded;\n\
   SELECT SUM(l_extendedprice) AS revenue FROM li_branded \
   WHERE l_quantity < avg_qty / 5 AS revenue;\n"

let tpch_q17 () = Frontends.Hive.parse tpch_q17_hive

(* ---------------- top-shopper (BEER) ---------------- *)

let top_shopper_beer =
  "spend = SELECT uid, SUM(amount) AS total FROM purchases \
   WHERE region = 'EU' GROUP BY uid;\n\
   big_spenders = SELECT uid, total FROM spend WHERE total > 1000;\n\
   OUTPUT big_spenders;\n"

let top_shopper () = Frontends.Beer.parse top_shopper_beer

(* ---------------- NetFlix recommendation (BEER) ---------------- *)

let netflix_core =
  "r0 = INPUT 'ratings';\n\
   m = INPUT 'movies';\n\
   r = SELECT user, movie, rating FROM r0 WHERE rating > 0;\n\
   rm = r JOIN m ON movie = movie;\n\
   rm2 = SELECT user, movie, rating FROM rm;\n\
   pairs = rm2 JOIN rm2 ON user = user;\n\
   prod = MAP pairs SET product = rating * r_rating;\n\
   sims = SELECT movie, r_movie, SUM(product) AS sim FROM prod \
   GROUP BY movie AND r_movie;\n\
   cand = sims JOIN r0 ON movie = movie;\n\
   scored = MAP cand SET score = sim * rating;\n\
   userscores = SELECT user, r_movie, SUM(score) AS total FROM scored \
   GROUP BY user AND r_movie;\n\
   best = SELECT user AS buser, MAX(total) AS top_score FROM userscores \
   GROUP BY user;\n\
   pick = userscores JOIN best ON user = buser;\n\
   recommendation = SELECT user, r_movie FROM pick WHERE total = top_score;\n"

let netflix () = Frontends.Beer.parse (netflix_core ^ "OUTPUT recommendation;\n")

(* five more mergeable operators on top of the 13-operator core *)
let netflix_extended () =
  Frontends.Beer.parse
    (netflix_core
     ^ "r2 = SELECT user, r_movie FROM recommendation WHERE user > 0;\n\
        r3 = MAP r2 SET boost = user * 2;\n\
        r4 = SELECT user, r_movie, boost FROM r3 WHERE boost >= 0;\n\
        r5 = DISTINCT r4;\n\
        r6 = TOP 100 OF r5 BY boost;\n\
        OUTPUT r6;\n")

(* ---------------- PageRank (GAS DSL, Listing 2) ---------------- *)

let pagerank_gas_source ~iterations =
  Printf.sprintf
    "GATHER = {\n\
    \  SUM (vertex_value)\n\
     }\n\
     APPLY = {\n\
    \  MUL [vertex_value, 0.85]\n\
    \  SUM [vertex_value, 0.15]\n\
     }\n\
     SCATTER = {\n\
    \  DIV [vertex_value, vertex_degree]\n\
     }\n\
     ITERATION_STOP = (iteration < %d)\n\
     ITERATION = {\n\
    \  SUM [iteration, 1]\n\
     }\n"
    iterations

let pagerank_gas ?(iterations = 5) () =
  Frontends.Gas.parse_to_graph
    (pagerank_gas_source ~iterations)
    ~vertices:"vertices" ~edges:"edges"

(* ---------------- connected components (GAS, MIN gather) ----------- *)

(* label propagation: each vertex keeps the minimum of its own label and
   the labels its in-neighbours scatter. The 0-valued default a dangling
   vertex would receive must not win the MIN, so the APPLY step compares
   against the vertex's own label explicitly via the gather of
   min(own, received): we scatter labels unchanged and gather MIN, then
   APPLY keeps the received minimum only when it is smaller — expressed
   with pure column algebra as min(a,b) = (a+b - |a-b|)/2 being
   unavailable, we instead rely on self-loops: every vertex scatters to
   itself (ring/self edges exist in all generated graphs), so the gather
   always includes the vertex's own label. *)
let connected_components_gas_source ~iterations =
  Printf.sprintf
    "GATHER = {
    \  MIN (vertex_value)
     }
     APPLY = {
     }
     SCATTER = {
     }
     ITERATION_STOP = (iteration < %d)
     ITERATION = {
    \  SUM [iteration, 1]
     }
"
    iterations

let connected_components ?(iterations = 10) () =
  Frontends.Gas.parse_to_graph
    (connected_components_gas_source ~iterations)
    ~vertices:"vertices" ~edges:"edges"

(* ---------------- cross-community PageRank (§6.3) ---------------- *)

let cross_community_pagerank ?(iterations = 5) () =
  let b = Ir.Builder.create () in
  let ea = Ir.Builder.input b "edges_a" in
  let eb = Ir.Builder.input b "edges_b" in
  let common = Ir.Builder.intersect b ~name:"common_edges" ea eb in
  (* derive PageRank vertex state from the common edge set *)
  let deg =
    Ir.Builder.group_by b ~keys:[ "src" ]
      ~aggs:[ Aggregate.make Aggregate.Count ~as_name:"vertex_degree" ]
      common
  in
  let with_id =
    Ir.Builder.map b ~target:"id" ~expr:(Expr.col "src") deg
  in
  let with_value =
    Ir.Builder.map b ~target:"vertex_value" ~expr:(Expr.float 1.) with_id
  in
  let vertices =
    Ir.Builder.project b ~name:"cc_vertices"
      ~columns:[ "id"; "vertex_value"; "vertex_degree" ]
      with_value
  in
  let gas_program =
    Frontends.Gas.parse (pagerank_gas_source ~iterations)
  in
  let body =
    Frontends.Gas.body_graph gas_program ~vertices:"cc_vertices"
      ~edges:"common_edges"
  in
  let loop =
    Ir.Builder.while_ b ~name:"cc_ranks"
      ~condition:(Ir.Operator.Fixed_iterations iterations)
      ~max_iterations:(iterations + 1)
      ~body [ vertices; common ]
  in
  Ir.Builder.finish b ~outputs:[ loop ]

(* ---------------- SSSP (BEER, WHILE CHANGES) ---------------- *)

let sssp_beer ~max_rounds =
  Printf.sprintf
    "dists = INPUT 'sssp_seeds';\n\
     edges = INPUT 'sssp_edges';\n\
     WHILE (CHANGES dists) MAXITER %d {\n\
    \  step = dists JOIN edges ON node = src;\n\
    \  cand = MAP step SET cost = cost + weight;\n\
    \  cand2 = SELECT dst AS node, MIN(cost) AS cost FROM cand GROUP BY dst;\n\
    \  all = cand2 UNION dists;\n\
    \  dists = SELECT node, MIN(cost) AS cost FROM all GROUP BY node;\n\
     }\n\
     OUTPUT dists;\n"
    max_rounds

let sssp ?(max_rounds = 50) () = Frontends.Beer.parse (sssp_beer ~max_rounds)

(* ---------------- k-means (BEER; CROSS JOIN by design) ------------- *)

let kmeans_beer ~iterations =
  Printf.sprintf
    "points = INPUT 'points';\n\
     centroids = INPUT 'centroids';\n\
     WHILE (ITERATION < %d) {\n\
    \  asg = points CROSS centroids;\n\
    \  d = MAP asg SET dist = (px - cx) * (px - cx) + (py - cy) * (py - cy);\n\
    \  best = SELECT pid AS pid2, MIN(dist) AS bd FROM d GROUP BY pid;\n\
    \  j = d JOIN best ON pid = pid2;\n\
    \  near = SELECT pid, px, py, cid FROM j WHERE dist = bd;\n\
    \  one = SELECT pid, MIN(cid) AS cid FROM near GROUP BY pid;\n\
    \  withxy = one JOIN points ON pid = pid;\n\
    \  centroids = SELECT cid, AVG(px) AS cx, AVG(py) AS cy FROM withxy \
     GROUP BY cid;\n\
     }\n\
     OUTPUT centroids;\n"
    iterations

let kmeans ?(iterations = 5) () =
  Frontends.Beer.parse (kmeans_beer ~iterations)

(* ---------------- §2.1 micro-benchmarks ---------------- *)

let simple_join () =
  Frontends.Beer.parse
    "j = left JOIN right ON key = key;\nOUTPUT j;\n"

let project_only () =
  Frontends.Beer.parse "out = SELECT value FROM lines;\nOUTPUT out;\n"
