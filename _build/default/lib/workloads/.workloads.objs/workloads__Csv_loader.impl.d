lib/workloads/csv_loader.ml: Array Datagen In_channel List Printf Relation Schema String Table Value
