lib/workloads/workflows.ml: Aggregate Expr Frontends Ir Printf Relation
