lib/workloads/datagen.ml: Array Engines Float List Printf Random Relation Schema Table Value
