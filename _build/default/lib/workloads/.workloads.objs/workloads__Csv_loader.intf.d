lib/workloads/csv_loader.mli: Datagen Engines Relation
