lib/workloads/workflows.mli: Ir
