lib/workloads/datagen.mli: Engines Relation
