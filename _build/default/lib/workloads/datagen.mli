(** Synthetic workload generators (paper §2, §6.1).

    Every generator produces a {!sized} relation: a small executed
    sample (so operators really run and results can be checked) plus
    the modeled on-disk size at the paper's data scale, which drives
    the engine performance models and the cost function — see
    DESIGN.md §2, "Modeled vs executed size".

    Generators are deterministic given their [seed]. *)

type sized = {
  table : Relation.Table.t;
  modeled_mb : float;
}

val put : Engines.Hdfs.t -> string -> sized -> unit

(* ---- micro-benchmarks (§2.1) ---- *)

(** Two-column space-separated ASCII strings; the PROJECT workload's
    input. [modeled_mb] is the figure's x-axis value. *)
val two_column_ascii : ?sample_rows:int -> ?seed:int -> modeled_mb:float ->
  unit -> sized

(** Uniformly random (key, value) rows for the symmetric JOIN benchmark;
    [rows] at paper scale (e.g. 39 million). *)
val uniform_pairs : ?sample_rows:int -> ?seed:int -> rows:int -> unit -> sized

(** The asymmetric JOIN of §2.1: the LiveJournal vertex list (4.8M rows)
    joined with its edge list (69M rows), producing ~1.9 GB. Returns
    (vertex side, edge side); both expose a [key] column. *)
val asymmetric_join_tables : ?seed:int -> unit -> sized * sized

(* ---- graphs ---- *)

type graph_spec = {
  spec_name : string;
  vertices : int;       (** paper-scale vertex count *)
  edges : int;          (** paper-scale edge count *)
}

val livejournal : graph_spec   (** 4.8M vertices, 69M edges *)

val orkut : graph_spec         (** 3M vertices, 117M edges *)

val twitter : graph_spec       (** 43M vertices, 1.4B edges *)

val web_community : graph_spec (** 5.8M vertices, 82M edges (synthetic) *)

(** Power-law edge relation [(src:int, dst:int)] plus PageRank vertex
    state [(id:int, vertex_value:float, vertex_degree:int)]. A ring
    backbone guarantees every vertex has in- and out-edges. *)
val graph_tables : ?sample_vertices:int -> ?seed:int -> graph_spec ->
  edges:unit -> sized * sized

(** The LiveJournal edge set and an overlapping synthetic web-community
    edge set over the same vertex id space (~40% shared edges) — the
    cross-community PageRank inputs (§6.3). *)
val community_pair : ?sample_vertices:int -> ?seed:int -> unit ->
  sized * sized

(** Edges with costs [(src, dst, weight:int)] and a seed frontier
    [(node, cost)] for SSSP on the Twitter graph (§6.7). *)
val sssp_tables : ?sample_vertices:int -> ?seed:int -> graph_spec ->
  unit -> sized * sized

(* ---- relational workloads ---- *)

(** TPC-H Q17 inputs at [scale_factor] (7.5 GB at SF 10):
    [lineitem(l_partkey, l_quantity, l_extendedprice)] and
    [part(p_partkey, p_brand, p_container)]. *)
val tpch : ?sample_rows:int -> ?seed:int -> scale_factor:int -> unit ->
  sized * sized

(** Purchases [(uid, region, amount)] for top-shopper; [users] at paper
    scale (tens of millions). *)
val purchases : ?sample_rows:int -> ?seed:int -> users:int -> unit -> sized

(** NetFlix inputs: ratings [(user, movie, rating)] (100M rows, 2.5 GB)
    and a movie list [(movie, genre)] (17k rows, 0.5 MB); [movies]
    bounds how many distinct movies are rated (the x-axis of
    Figure 10). *)
val netflix : ?sample_rows:int -> ?seed:int -> movies:int -> unit ->
  sized * sized

(** Random 2-D points [(pid, px, py)] and [k] initial centroids
    [(cid, cx, cy)] for k-means (100M points in the paper). *)
val kmeans_points : ?sample_rows:int -> ?seed:int -> points:int -> k:int ->
  unit -> sized * sized
