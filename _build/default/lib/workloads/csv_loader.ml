open Relation

exception Bad_spec of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_spec s)) fmt

let type_of_string = function
  | "int" -> Value.Tint
  | "float" -> Value.Tfloat
  | "string" | "str" -> Value.Tstring
  | "bool" -> Value.Tbool
  | other -> bad "unknown column type %S" other

let parse_schema spec =
  let columns =
    String.split_on_char ',' spec
    |> List.map (fun col ->
        match String.split_on_char ':' (String.trim col) with
        | [ name; ty ] when name <> "" ->
          { Schema.name; ty = type_of_string ty }
        | _ -> bad "bad column spec %S (want name:type)" col)
  in
  if columns = [] then bad "empty schema";
  try Schema.make columns
  with Invalid_argument msg -> bad "%s" msg

let load_csv ~schema path =
  let types =
    List.map (fun (c : Schema.column) -> c.ty) (Schema.columns schema)
  in
  let parse_row lineno line =
    let fields = String.split_on_char ',' line |> List.map String.trim in
    if List.length fields <> List.length types then
      bad "%s:%d: %d fields, schema has %d" path lineno (List.length fields)
        (List.length types);
    try Array.of_list (List.map2 Value.parse types fields)
    with Invalid_argument msg -> bad "%s:%d: %s" path lineno msg
  in
  let rows = ref [] in
  In_channel.with_open_text path (fun ic ->
      let lineno = ref 0 in
      try
        while true do
          incr lineno;
          let line = input_line ic in
          let trimmed = String.trim line in
          if trimmed <> "" && trimmed.[0] <> '#' then
            rows := parse_row !lineno trimmed :: !rows
        done
      with End_of_file -> ());
  Table.create_unchecked schema (Array.of_list (List.rev !rows))

let parse_binding spec =
  match String.index_opt spec '=' with
  | None -> bad "binding %S lacks '=' (want name=path:schema)" spec
  | Some eq ->
    let name = String.sub spec 0 eq in
    let rest = String.sub spec (eq + 1) (String.length spec - eq - 1) in
    let rest, modeled_mb =
      match String.rindex_opt rest '@' with
      | Some at ->
        let mb_str =
          String.sub rest (at + 1) (String.length rest - at - 1)
        in
        (match float_of_string_opt mb_str with
         | Some mb -> (String.sub rest 0 at, Some mb)
         | None -> bad "bad modeled size %S" mb_str)
      | None -> (rest, None)
    in
    (match String.index_opt rest ':' with
     | None -> bad "binding %S lacks a schema (want name=path:schema)" spec
     | Some colon ->
       let path = String.sub rest 0 colon in
       let schema_spec =
         String.sub rest (colon + 1) (String.length rest - colon - 1)
       in
       let schema = parse_schema schema_spec in
       let table = load_csv ~schema path in
       let modeled_mb =
         match modeled_mb with
         | Some mb -> mb
         | None -> Table.encoded_mb table
       in
       (name, { Datagen.table; modeled_mb }))

let load_bindings hdfs specs =
  List.iter
    (fun spec ->
       let name, sized = parse_binding spec in
       Datagen.put hdfs name sized)
    specs
