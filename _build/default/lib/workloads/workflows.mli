(** The paper's workflow zoo (§6.1): three batch workflows (TPC-H Q17,
    top-shopper, NetFlix recommendation), three iterative ones
    (PageRank, SSSP, k-means) and the hybrid cross-community PageRank.

    Each workflow is expressed through a front-end — HiveQL for Q17,
    BEER for the relational ones, the GAS DSL for PageRank — so these
    builders also serve as integration tests of the front-end layer.
    The relation names match the {!Datagen} loaders. *)

(** TPC-H query 17 over [lineitem]/[part] (HiveQL; three shuffles, so
    Hive-on-Hadoop needs three jobs — §6.2). Output: [revenue]. *)
val tpch_q17 : unit -> Ir.Operator.graph

(** The HiveQL source of {!tpch_q17} (CLI / docs). *)
val tpch_q17_hive : string

(** Top-shopper over [purchases] (BEER; three mergeable operators —
    the Figure 12 micro-benchmark). Output: [big_spenders]. *)
val top_shopper : unit -> Ir.Operator.graph

val top_shopper_beer : string

(** NetFlix movie recommendation over [ratings]/[movies] (BEER;
    13 operators, data-intensive — §6.4). Output: [recommendation]. *)
val netflix : unit -> Ir.Operator.graph

(** Extended NetFlix variant with 18 operators (the Figure 13 DAG). *)
val netflix_extended : unit -> Ir.Operator.graph

(** Five-iteration PageRank over [vertices]/[edges] (GAS DSL,
    Listing 2). *)
val pagerank_gas : ?iterations:int -> unit -> Ir.Operator.graph

val pagerank_gas_source : iterations:int -> string

(** Connected components via the GAS DSL (MIN gather): every vertex
    repeatedly adopts the smallest label among itself and its
    in-neighbours. [vertices] must carry the vertex id as the initial
    [vertex_value]; with enough iterations the labels converge to each
    component's smallest vertex id. *)
val connected_components : ?iterations:int -> unit -> Ir.Operator.graph

val connected_components_gas_source : iterations:int -> string

(** Cross-community PageRank (§6.3): INTERSECT of [edges_a]/[edges_b],
    degree computation, then PageRank on the common sub-graph. *)
val cross_community_pagerank : ?iterations:int -> unit -> Ir.Operator.graph

(** Single-source shortest paths over [sssp_edges]/[sssp_seeds] (BEER
    WHILE CHANGES). Output: [dists]. *)
val sssp : ?max_rounds:int -> unit -> Ir.Operator.graph

val sssp_beer : max_rounds:int -> string

(** k-means over [points]/[centroids] (BEER; CROSS JOIN, the §6.7
    footnote's inefficiency included by design). *)
val kmeans : ?iterations:int -> unit -> Ir.Operator.graph

(** The §2.1 JOIN micro-benchmark over [left]/[right] (BEER). *)
val simple_join : unit -> Ir.Operator.graph

(** The §2.1 PROJECT micro-benchmark over [lines] (BEER). *)
val project_only : unit -> Ir.Operator.graph
