(** Expressivity checks shared by the engine admission tests
    (paper §4.3.2: per-back-end mergeability stems from what one job of
    each engine can express). *)

(** Rejects graphs containing BLACK_BOX nodes whose hint names another
    backend; accepts matching hints. *)
val check_black_box : Backend.t -> Ir.Operator.graph -> (unit, string) result

(** General-purpose engines (Spark, Naiad, serial C): any operator
    sub-DAG, including WHILE. *)
val general : Backend.t -> Ir.Operator.graph -> (unit, string) result

(** MapReduce-style engines (Hadoop, Metis): at most one shuffle
    operator per job and no in-job iteration — WHILE must be expanded
    into per-iteration jobs by the executor. *)
val mapreduce : Backend.t -> Ir.Operator.graph -> (unit, string) result

(** GAS-only engines (PowerGraph, GraphChi): exactly the vertex-centric
    graph idiom (§4.3.1). *)
val gas : Backend.t -> Ir.Operator.graph -> (unit, string) result
