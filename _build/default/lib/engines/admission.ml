let check_black_box backend (g : Ir.Operator.graph) =
  let bad =
    List.find_map
      (fun (n : Ir.Operator.node) ->
         match n.kind with
         | Ir.Operator.Black_box { backend_hint; _ }
           when not
                  (String.lowercase_ascii backend_hint
                   = String.lowercase_ascii (Backend.name backend)) ->
           Some backend_hint
         | _ -> None)
      g.nodes
  in
  match bad with
  | Some hint ->
    Error
      (Printf.sprintf "black-box operator requires back-end %s, not %s" hint
         (Backend.name backend))
  | None -> Ok ()

let general backend g = check_black_box backend g

let mapreduce backend (g : Ir.Operator.graph) =
  match check_black_box backend g with
  | Error _ as e -> e
  | Ok () ->
    if Exec_helper.has_while g then
      Error
        (Printf.sprintf
           "%s cannot iterate within a job; WHILE must be expanded"
           (Backend.name backend))
    else
      let shuffles = Exec_helper.shuffle_count g in
      if shuffles > 1 then
        Error
          (Printf.sprintf
             "%s supports one group-by-key operation per job; graph has %d"
             (Backend.name backend) shuffles)
      else Ok ()

let gas backend (g : Ir.Operator.graph) =
  match check_black_box backend g with
  | Error _ as e -> e
  | Ok () ->
    if Exec_helper.is_graph_idiom g then Ok ()
    else
      Error
        (Printf.sprintf "%s only runs vertex-centric (GAS) graph jobs"
           (Backend.name backend))
