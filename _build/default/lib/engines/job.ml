type options = {
  scan_passes : int;
  process_multiplier : float;
  shuffle_multiplier : float;
  naiad_parallel_io : bool;
  naiad_vertex_group_by : bool;
}

let optimized_options =
  { scan_passes = 1; process_multiplier = 1.08; shuffle_multiplier = 1.1;
    naiad_parallel_io = true; naiad_vertex_group_by = true }

let baseline_options =
  { scan_passes = 1; process_multiplier = 1.0; shuffle_multiplier = 1.0;
    naiad_parallel_io = true; naiad_vertex_group_by = true }

let native_frontend_options =
  { scan_passes = 2; process_multiplier = 1.0; shuffle_multiplier = 1.0;
    naiad_parallel_io = false; naiad_vertex_group_by = false }

type t = {
  label : string;
  backend : Backend.t;
  graph : Ir.Operator.graph;
  options : options;
}

let make ?(options = optimized_options) ~label ~backend graph =
  { label; backend; graph; options }

let pp ppf t =
  Format.fprintf ppf "job %S on %a: %d operator(s)" t.label Backend.pp
    t.backend
    (Ir.Dag.operator_count t.graph)
