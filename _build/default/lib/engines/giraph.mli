(** Giraph: a Pregel-style vertex-centric engine over Hadoop
    infrastructure (paper Table 3 — {b reproduction extension}: the
    original Musketeer prototype did not target Giraph; this simulator
    demonstrates the §3 extensibility claim).

    Bulk-synchronous supersteps over hash-partitioned vertices. Without
    PowerGraph's vertex-cut, every message crosses the network, so it
    trails PowerGraph on power-law graphs; JVM start-up and
    checkpointing give it a Hadoop-like job overhead. *)

val engine : Engine.t
