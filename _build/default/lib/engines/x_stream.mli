(** X-Stream: edge-centric processing with streaming partitions on one
    machine (paper Table 3; Roy et al., SOSP 2013 — {b reproduction
    extension}: not targeted by the original prototype).

    Streams the unsorted edge list sequentially (cheaper pre-processing
    than GraphChi's sorted shards) and scatters updates into streaming
    partitions; vertex access is partition-local, so each superstep is
    bounded by sequential disk bandwidth even out-of-core. *)

val engine : Engine.t
