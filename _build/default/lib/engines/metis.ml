let backend = Backend.Metis

(* One machine: HDFS ingest is bounded by its NIC (the paper notes the
   PROJECT benchmark bottlenecks on reading from HDFS, and that Metis
   with local data wins up to 2 GB). All cores process in memory; when
   the working set exceeds RAM the in-memory map-reduce thrashes. *)
let rates ~(cluster : Cluster.t) ~job:_ ~volumes =
  let machine = Cluster.single in
  ignore cluster;
  let memory_mb = machine.memory_per_node_gb *. 1024. in
  let in_memory = volumes.Perf.input_mb <= 0.8 *. memory_mb in
  let process_base = float_of_int machine.cores_per_node *. 80. in
  { Perf.overhead_s = 1.5;
    pull_mb_s = machine.network_mb_s;
    load_mb_s = None;
    process_mb_s = (if in_memory then process_base else process_base /. 6.);
    comm_mb_s = (if in_memory then 1500. else 120.);
    push_mb_s = machine.network_mb_s;
    iter_overhead_s = 0.5 }

let engine =
  Engine.of_spec
    { (Engine.default_spec backend) with
      Engine.spec_supports = Admission.mapreduce backend;
      spec_rates = rates }
