let backend = Backend.Serial_c

(* One machine, one thread, practically no startup cost. The baseline
   runs on an HDFS data node and streams the node-local replica (how
   the paper's simple C jobs were measured), so its I/O runs at disk
   speed rather than NIC speed. *)
let rates ~(cluster : Cluster.t) ~job:_ ~volumes:_ =
  ignore cluster;
  let disk = Cluster.single.disk_mb_s in
  { Perf.overhead_s = 0.2;
    pull_mb_s = disk;
    load_mb_s = None;
    process_mb_s = 250.;
    comm_mb_s = 2000.;  (* "shuffles" are in-process hash tables *)
    push_mb_s = disk;
    iter_overhead_s = 0.01 }

let engine =
  Engine.of_spec
    { (Engine.default_spec backend) with
      Engine.spec_supports = Admission.general backend;
      spec_rates = rates }
