lib/engines/registry.ml: Backend Engine Giraph Graphchi Hadoop List Metis Naiad Powergraph Serial_c Spark X_stream
