lib/engines/powergraph.mli: Engine
