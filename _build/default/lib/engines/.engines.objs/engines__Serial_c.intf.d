lib/engines/serial_c.mli: Engine
