lib/engines/serial_c.ml: Admission Backend Cluster Engine Perf
