lib/engines/hdfs.mli: Relation
