lib/engines/perf.mli: Ir Report
