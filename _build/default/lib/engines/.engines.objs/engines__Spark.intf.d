lib/engines/spark.mli: Engine
