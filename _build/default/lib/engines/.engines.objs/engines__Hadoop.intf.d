lib/engines/hadoop.mli: Engine
