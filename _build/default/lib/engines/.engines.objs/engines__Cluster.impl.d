lib/engines/cluster.ml: Format
