lib/engines/naiad.mli: Engine
