lib/engines/metis.mli: Engine
