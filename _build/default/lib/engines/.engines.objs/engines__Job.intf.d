lib/engines/job.mli: Backend Format Ir
