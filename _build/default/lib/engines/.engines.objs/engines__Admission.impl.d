lib/engines/admission.ml: Backend Exec_helper Ir List Printf String
