lib/engines/report.ml: Backend Format List
