lib/engines/hadoop.ml: Admission Backend Cluster Engine Perf
