lib/engines/backend.ml: Format Stdlib String
