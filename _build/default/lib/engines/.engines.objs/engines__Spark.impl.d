lib/engines/spark.ml: Admission Backend Cluster Engine Exec_helper List Perf Printf Report
