lib/engines/perf.ml: Float Ir Report
