lib/engines/graphchi.mli: Engine
