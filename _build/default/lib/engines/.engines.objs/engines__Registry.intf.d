lib/engines/registry.mli: Backend Cluster Engine Hdfs Ir Job Report
