lib/engines/x_stream.mli: Engine
