lib/engines/backend.mli: Format
