lib/engines/giraph.ml: Admission Backend Cluster Engine Perf
