lib/engines/faults.mli: Backend Report
