lib/engines/x_stream.ml: Admission Backend Cluster Engine Perf
