lib/engines/engine.mli: Backend Cluster Exec_helper Hdfs Ir Job Perf Report
