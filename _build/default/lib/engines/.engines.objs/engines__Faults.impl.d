lib/engines/faults.ml: Capabilities Float List Report
