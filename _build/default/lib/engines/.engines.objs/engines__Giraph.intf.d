lib/engines/giraph.mli: Engine
