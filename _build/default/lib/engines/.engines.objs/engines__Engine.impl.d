lib/engines/engine.ml: Backend Cluster Exec_helper Hdfs Ir Job List Perf Report
