lib/engines/naiad.ml: Admission Backend Cluster Engine Exec_helper Job List Perf
