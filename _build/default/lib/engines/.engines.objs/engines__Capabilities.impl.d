lib/engines/capabilities.ml: Backend Format List
