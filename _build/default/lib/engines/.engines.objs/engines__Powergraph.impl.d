lib/engines/powergraph.ml: Admission Backend Cluster Engine Perf
