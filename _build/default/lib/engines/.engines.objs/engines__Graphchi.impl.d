lib/engines/graphchi.ml: Admission Backend Cluster Engine Float Perf
