lib/engines/admission.mli: Backend Ir
