lib/engines/hdfs.ml: Hashtbl List Relation String
