lib/engines/exec_helper.ml: Hashtbl Hdfs Ir List Perf Printf Relation Table
