lib/engines/metis.ml: Admission Backend Cluster Engine Perf
