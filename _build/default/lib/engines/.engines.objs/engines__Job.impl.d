lib/engines/job.ml: Backend Format Ir
