lib/engines/cluster.mli: Format
