lib/engines/capabilities.mli: Backend Format
