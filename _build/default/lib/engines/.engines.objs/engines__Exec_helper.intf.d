lib/engines/exec_helper.mli: Hdfs Ir Perf Relation
