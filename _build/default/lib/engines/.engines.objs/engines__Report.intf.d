lib/engines/report.mli: Backend Format
