(** GraphChi (paper Table 3; Kyrola et al., OSDI 2012).

    Out-of-core vertex-centric processing on a single machine, built
    around the parallel-sliding-windows shard layout. Surprisingly
    competitive for smaller graphs — the paper measures it within 50% of
    Spark-on-100-nodes for Orkut PageRank (§2.2) — at a fraction of the
    resources, which makes it the resource-efficiency anchor of
    Figure 8c. Only GAS-idiom jobs are accepted. The HDFS connector of
    Table 2 is assumed (inputs stream in over the machine's NIC). *)

val engine : Engine.t
