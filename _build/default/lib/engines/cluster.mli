(** Cluster descriptor — the scale knob of the paper's experiments.

    The paper evaluates on a 100-node EC2 cluster of m1.xlarge instances
    and a dedicated 7-node local cluster (§6.1); several figures vary the
    node count (1 / 16 / 100). *)

type t = {
  nodes : int;
  cores_per_node : int;
  memory_per_node_gb : float;
  (** Aggregate HDFS streaming bandwidth one node can sustain, MB/s.
      Engines derive their PULL/PUSH rates from this and their own I/O
      architecture. *)
  disk_mb_s : float;
  (** Point-to-point network bandwidth per node, MB/s — shuffle and
      vertex-message traffic go through this. *)
  network_mb_s : float;
}

(** The paper's 7-node local data-analytics cluster. *)
val local_seven : t

(** EC2 m1.xlarge cluster of [nodes] machines. *)
val ec2 : nodes:int -> t

(** A single machine (for single-machine engines / baselines). *)
val single : t

val total_memory_gb : t -> float

val pp : Format.formatter -> t -> unit
