(** Simple, serial C code on one machine (paper Table 3, §2.1).

    No startup cost worth mentioning and no parallelism at all: it wins
    small asymmetric workloads where distributed systems cannot amortize
    their overheads (Figure 2b's LiveJournal join), and loses as soon as
    data volume grows. *)

val engine : Engine.t
