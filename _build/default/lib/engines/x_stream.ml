let backend = Backend.X_stream

(* One machine. No shard sorting: the load phase only splits edges into
   streaming partitions (fast); each superstep streams edges + updates
   at sequential-I/O speed regardless of graph size. *)
let rates ~cluster:_ ~job:_ ~volumes =
  let machine = Cluster.single in
  let memory_mb = machine.memory_per_node_gb *. 1024. in
  let in_memory = volumes.Perf.input_mb <= 0.8 *. memory_mb in
  let streaming = machine.disk_mb_s *. 1.8 in
  let compute = float_of_int machine.cores_per_node *. 95. in
  { Perf.overhead_s = 1.5;
    pull_mb_s = machine.network_mb_s;
    load_mb_s = Some 260.;
    process_mb_s = (if in_memory then compute else streaming);
    comm_mb_s = (if in_memory then 2000. else streaming);
    push_mb_s = machine.network_mb_s;
    iter_overhead_s = 0.3 }

let engine =
  Engine.of_spec
    { (Engine.default_spec backend) with
      Engine.spec_supports = Admission.gas backend;
      spec_rates = rates;
      spec_adjust_volumes =
        (fun ~job ~stats volumes ->
           Engine.gas_message_volumes ~job ~stats volumes) }
