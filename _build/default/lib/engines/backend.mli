(** The seven back-end execution engines Musketeer targets (paper §1):
    Hadoop MapReduce, Spark, Naiad, PowerGraph, GraphChi, Metis and
    simple serial C code — plus two engines this reproduction adds to
    demonstrate the paper's extensibility claim (§3): a Giraph-style
    Pregel engine and an X-Stream-style edge-centric engine (both rows
    of Table 3 the original prototype did not support). *)

type t =
  | Hadoop
  | Spark
  | Naiad
  | Power_graph
  | Graph_chi
  | Metis
  | Serial_c
  | Giraph    (** extension: Pregel-style vertex-centric cluster engine *)
  | X_stream  (** extension: edge-centric single-machine engine *)

(** The paper's seven engines — what automatic mapping explores by
    default, keeping the reproduced figures faithful. *)
val all : t list

(** All nine engines, including the two extensions. *)
val extended : t list

val name : t -> string

val of_string : string -> t option

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Engines that run on a single machine (Table 3, "unit" column). *)
val single_machine : t -> bool

(** Engines restricted to the vertex-centric / GAS computation paradigm
    — they can only run graph-idiom jobs (§4.3.1). *)
val gas_only : t -> bool

(** Engines that can run an arbitrary operator sub-DAG (incl. WHILE) as
    one job; MapReduce-style engines are limited to one shuffle per job
    (§4.3.2). *)
val general_purpose : t -> bool
