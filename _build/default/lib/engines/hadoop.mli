(** Hadoop MapReduce (paper Table 3).

    Large per-job startup cost (JVM spawn, task scheduling), but it
    streams from and to HDFS in parallel on every node, which makes it
    the strongest system for large batch scans and big symmetric joins
    (Figure 2). One group-by-key operation per job; iteration requires a
    chain of jobs, which is why it loses badly on PageRank (Figure 3). *)

val engine : Engine.t
