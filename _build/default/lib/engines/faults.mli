(** Fault-tolerance modeling (Table 3's FT column).

    The paper's feature matrix distinguishes engines with checkpointed /
    lineage-based recovery (Hadoop, Spark, Giraph; Naiad and PowerGraph
    "can be extended") from single-machine engines without any (Metis,
    GraphChi, serial C, X-Stream). This module prices a worker failure
    injected at a given fraction of a job's execution:

    - a fault-tolerant engine re-executes only the lost tasks; the
      smaller its work units (Table 3, "work unit size"), the less is
      lost — plus a fixed detection/rescheduling delay;
    - an engine without fault tolerance restarts the job from scratch.

    This is a reproduction extension (the paper lists FT but never
    exercises it); `bench/main.exe -- ablations` reports the resulting
    recovery costs per engine. *)

type recovery =
  | Restart              (** no FT: lose everything done so far *)
  | Reexecute_tasks of float
      (** FT: re-run the lost share of in-flight work; the float is the
          work-unit granularity (fraction of a job one task represents) *)

(** How the backend recovers, derived from {!Capabilities}. *)
val recovery_of : Backend.t -> recovery

(** [makespan_with_failure backend report ~at_fraction] — the makespan
    had one worker failed after [at_fraction] (in [0,1]) of the job.
    Raises [Invalid_argument] outside the range. *)
val makespan_with_failure :
  Backend.t -> Report.t -> at_fraction:float -> float

(** Relative slowdown ([makespan_with_failure / makespan]). *)
val failure_overhead :
  Backend.t -> Report.t -> at_fraction:float -> float
