let find = function
  | Backend.Hadoop -> Hadoop.engine
  | Backend.Spark -> Spark.engine
  | Backend.Naiad -> Naiad.engine
  | Backend.Power_graph -> Powergraph.engine
  | Backend.Graph_chi -> Graphchi.engine
  | Backend.Metis -> Metis.engine
  | Backend.Serial_c -> Serial_c.engine
  | Backend.Giraph -> Giraph.engine
  | Backend.X_stream -> X_stream.engine

let all = List.map find Backend.extended

let run backend ~cluster ~hdfs job =
  (find backend).Engine.run ~cluster ~hdfs job

let supports backend graph = (find backend).Engine.supports graph
