let backend = Backend.Naiad

let single_reader_mb_s = 28.

let rates ~(cluster : Cluster.t) ~(job : Job.t) ~volumes:_ =
  let n = cluster.nodes in
  let parallel = job.options.Job.naiad_parallel_io in
  let io_base =
    if parallel then cluster.disk_mb_s *. 0.7 else single_reader_mb_s
  in
  { Perf.overhead_s = 4.;
    (* stock code reads with one thread per machine; Musketeer's patch
       reads every HDFS block in parallel (Table 2) *)
    pull_mb_s = Perf.scaled ~base:io_base ~nodes:n ~alpha:0.95;
    load_mb_s = None;
    process_mb_s =
      Perf.scaled
        ~base:(float_of_int cluster.cores_per_node *. 55.)
        ~nodes:n ~alpha:0.92;
    comm_mb_s =
      Perf.scaled ~base:(cluster.network_mb_s *. 0.8) ~nodes:n ~alpha:0.92;
    (* ...and stock Lindi writes output through a single thread on a
       single machine (§2.1) *)
    push_mb_s =
      (if parallel then
         Perf.scaled ~base:(io_base *. 0.8) ~nodes:n ~alpha:0.95
       else single_reader_mb_s);
    iter_overhead_s = 0.3 }

(* Lindi's non-associative GROUP BY: all rows of the operator's input
   are collected on a single machine before grouping, so the operator
   pays full-volume traffic at one node's bandwidth instead of the
   cluster's aggregate (§6.2). *)
let comm_penalty ~(cluster : Cluster.t) ~(job : Job.t) ~stats =
  if job.options.Job.naiad_vertex_group_by then 0.
  else
    let group_mb =
      List.fold_left
        (fun acc (s : Exec_helper.op_stat) ->
           if s.kind_name = "GROUP BY" || s.kind_name = "AGG" then
             acc +. s.in_mb
           else acc)
        0. stats
    in
    group_mb /. (cluster.network_mb_s *. 0.55)

(* the vertex-level GROUP BY pre-aggregates locally before shuffling
   (combiner-style), cutting the aggregation's network volume ~10x *)
let adjust_volumes ~(job : Job.t) ~stats volumes =
  if not job.options.Job.naiad_vertex_group_by then volumes
  else begin
    let group_mb =
      List.fold_left
        (fun acc (s : Exec_helper.op_stat) ->
           if s.kind_name = "GROUP BY" || s.kind_name = "AGG" then
             acc +. s.in_mb
           else acc)
        0. stats
    in
    { volumes with
      Perf.comm_mb = volumes.Perf.comm_mb -. (0.9 *. group_mb) }
  end

let engine =
  Engine.of_spec
    { (Engine.default_spec backend) with
      Engine.spec_supports = Admission.general backend;
      spec_rates = rates;
      spec_comm_penalty_s = comm_penalty;
      spec_adjust_volumes = adjust_volumes }
