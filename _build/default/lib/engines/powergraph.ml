let backend = Backend.Power_graph

(* The vertex-cut reduces message volume by ~3x vs. a hash-partitioned
   edge-cut; we express it as extra effective comm bandwidth. Loading is
   expensive (ingress partitioning of the whole edge list) and per-node
   coordination costs grow linearly, capping useful scale around 16
   nodes as in the paper. *)
let sharding_gain = 3.5

let rates ~(cluster : Cluster.t) ~job:_ ~volumes:_ =
  let n = cluster.nodes in
  let nf = float_of_int n in
  { Perf.overhead_s = 5. +. (0.8 *. nf);
    pull_mb_s = Perf.scaled ~base:(cluster.disk_mb_s *. 0.6) ~nodes:n ~alpha:0.9;
    (* ingress partitioning of the whole edge list; its coordination
       scales poorly, which (with the per-superstep barriers below) is
       why the paper saw no benefit beyond 16 nodes *)
    load_mb_s = Some (Perf.scaled ~base:38. ~nodes:n ~alpha:0.6);
    process_mb_s =
      Perf.scaled
        ~base:(float_of_int cluster.cores_per_node *. 100.)
        ~nodes:n ~alpha:0.6;
    comm_mb_s =
      Perf.scaled
        ~base:(cluster.network_mb_s *. 0.9 *. sharding_gain)
        ~nodes:n ~alpha:0.45;
    push_mb_s = Perf.scaled ~base:(cluster.disk_mb_s *. 0.5) ~nodes:n ~alpha:0.9;
    iter_overhead_s = 0.6 +. (0.25 *. nf) }

let engine =
  Engine.of_spec
    { (Engine.default_spec backend) with
      Engine.spec_supports = Admission.gas backend;
      spec_rates = rates;
      spec_adjust_volumes =
        (fun ~job ~stats volumes ->
           Engine.gas_message_volumes ~job ~stats volumes) }
