(** A back-end job: the unit of work Musketeer's partitioner assigns to
    one execution engine (paper §5: each DAG partition becomes a job).

    The job's graph is a self-contained IR sub-DAG whose INPUT nodes
    name relations in the shared HDFS and whose external outputs are
    written back to HDFS — exactly how Musketeer moves data across
    system boundaries (§6.3). [options] capture properties of the
    *generated code* that affect performance but not semantics. *)

type options = {
  scan_passes : int;
      (** map-side passes over the input data. 1 = fully shared scans;
          naive per-operator code uses more (§4.3.3, §4.3.4) *)
  process_multiplier : float;
      (** residual inefficiency of generated code relative to a
          hand-optimized implementation (1.0 = oracle baseline);
          Musketeer-generated code carries a small, backend-dependent
          factor (§6.4) *)
  shuffle_multiplier : float;
      (** network-volume inflation of generated code vs an expert's
          compact custom serialization/partitioning (mostly relevant to
          the JVM engines; 1.0 = hand-tuned) *)
  naiad_parallel_io : bool;
      (** Musketeer's Naiad code uses the parallel-I/O patch of Table 2;
          stock Lindi code reads with one thread per machine (§2.1) *)
  naiad_vertex_group_by : bool;
      (** use Naiad's low-level vertex API for associative GROUP BY
          instead of Lindi's collect-on-one-machine operator (§6.2) *)
}

(** Options of Musketeer-generated code with every optimization on. *)
val optimized_options : options

(** Options modelling a hand-tuned, non-portable baseline job. *)
val baseline_options : options

(** Stock front-end code (e.g. Lindi's own Naiad path). *)
val native_frontend_options : options

type t = {
  label : string;
  backend : Backend.t;
  graph : Ir.Operator.graph;
  options : options;
}

val make :
  ?options:options -> label:string -> backend:Backend.t ->
  Ir.Operator.graph -> t

val pp : Format.formatter -> t -> unit
