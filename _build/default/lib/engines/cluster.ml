type t = {
  nodes : int;
  cores_per_node : int;
  memory_per_node_gb : float;
  disk_mb_s : float;
  network_mb_s : float;
}

let local_seven =
  { nodes = 7; cores_per_node = 8; memory_per_node_gb = 16.;
    disk_mb_s = 140.; network_mb_s = 110. }

(* m1.xlarge: 4 vCPU, 15 GB RAM, moderate I/O *)
let ec2 ~nodes =
  if nodes <= 0 then invalid_arg "Cluster.ec2: nodes must be positive";
  { nodes; cores_per_node = 4; memory_per_node_gb = 15.; disk_mb_s = 90.;
    network_mb_s = 60. }

let single =
  { nodes = 1; cores_per_node = 8; memory_per_node_gb = 16.;
    disk_mb_s = 140.; network_mb_s = 110. }

let total_memory_gb t = float_of_int t.nodes *. t.memory_per_node_gb

let pp ppf t =
  Format.fprintf ppf "%d node%s (%d cores, %.0f GB each)" t.nodes
    (if t.nodes = 1 then "" else "s")
    t.cores_per_node t.memory_per_node_gb
