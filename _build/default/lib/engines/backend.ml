type t =
  | Hadoop
  | Spark
  | Naiad
  | Power_graph
  | Graph_chi
  | Metis
  | Serial_c
  | Giraph
  | X_stream

let all = [ Hadoop; Spark; Naiad; Power_graph; Graph_chi; Metis; Serial_c ]

let extended = all @ [ Giraph; X_stream ]

let name = function
  | Hadoop -> "Hadoop"
  | Spark -> "Spark"
  | Naiad -> "Naiad"
  | Power_graph -> "PowerGraph"
  | Graph_chi -> "GraphChi"
  | Metis -> "Metis"
  | Serial_c -> "SerialC"
  | Giraph -> "Giraph"
  | X_stream -> "X-Stream"

let of_string s =
  match String.lowercase_ascii s with
  | "hadoop" -> Some Hadoop
  | "spark" -> Some Spark
  | "naiad" -> Some Naiad
  | "powergraph" | "power_graph" -> Some Power_graph
  | "graphchi" | "graph_chi" -> Some Graph_chi
  | "metis" -> Some Metis
  | "serialc" | "serial_c" | "c" -> Some Serial_c
  | "giraph" | "pregel" -> Some Giraph
  | "xstream" | "x-stream" | "x_stream" -> Some X_stream
  | _ -> None

let compare = Stdlib.compare

let equal a b = compare a b = 0

let pp ppf t = Format.pp_print_string ppf (name t)

let single_machine = function
  | Graph_chi | Metis | Serial_c | X_stream -> true
  | Hadoop | Spark | Naiad | Power_graph | Giraph -> false

let gas_only = function
  | Power_graph | Graph_chi | Giraph | X_stream -> true
  | Hadoop | Spark | Naiad | Metis | Serial_c -> false

let general_purpose = function
  | Spark | Naiad | Serial_c -> true
  | Hadoop | Metis | Power_graph | Graph_chi | Giraph | X_stream -> false
