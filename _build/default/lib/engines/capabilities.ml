type iteration_support =
  | Native
  | Job_chain
  | No_iteration

type row = {
  system : string;
  backend : Backend.t option;
  paradigm : string;
  unit_of_deployment : string;
  iteration : iteration_support;
  default_sharding : string;
  work_unit_size : string;
  fault_tolerance : string;
  language : string;
}

let all =
  [ { system = "MapReduce/Hadoop"; backend = Some Backend.Hadoop;
      paradigm = "MapReduce"; unit_of_deployment = "cluster";
      iteration = Job_chain; default_sharding = "user-def.";
      work_unit_size = "large"; fault_tolerance = "yes";
      language = "C++/Java" };
    { system = "Spark"; backend = Some Backend.Spark;
      paradigm = "transformations"; unit_of_deployment = "cluster";
      iteration = Native; default_sharding = "uniform";
      work_unit_size = "med."; fault_tolerance = "yes"; language = "Scala" };
    { system = "Dryad"; backend = None; paradigm = "static data-flow";
      unit_of_deployment = "cluster"; iteration = Job_chain;
      default_sharding = "user-def."; work_unit_size = "large";
      fault_tolerance = "yes"; language = "C#" };
    { system = "Naiad"; backend = Some Backend.Naiad;
      paradigm = "timely data-flow"; unit_of_deployment = "cluster";
      iteration = Native; default_sharding = "user-def.";
      work_unit_size = "small"; fault_tolerance = "(yes)"; language = "C#" };
    { system = "Pregel/Giraph"; backend = Some Backend.Giraph;
      paradigm = "vertex-centric";
      unit_of_deployment = "cluster"; iteration = Native;
      default_sharding = "uniform"; work_unit_size = "med.";
      fault_tolerance = "yes"; language = "C++/Java" };
    { system = "PowerGraph"; backend = Some Backend.Power_graph;
      paradigm = "vertex-centric (GAS)"; unit_of_deployment = "cluster";
      iteration = Native; default_sharding = "power-law";
      work_unit_size = "med."; fault_tolerance = "(yes)"; language = "C++" };
    { system = "CIEL"; backend = None; paradigm = "dynamic data-flow";
      unit_of_deployment = "cluster"; iteration = Native;
      default_sharding = "user-def."; work_unit_size = "med.";
      fault_tolerance = "yes"; language = "various" };
    { system = "Serial C code"; backend = Some Backend.Serial_c;
      paradigm = "none/serial"; unit_of_deployment = "machine";
      iteration = Native; default_sharding = "-"; work_unit_size = "small";
      fault_tolerance = "no"; language = "C" };
    { system = "Phoenix/Metis"; backend = Some Backend.Metis;
      paradigm = "MapReduce"; unit_of_deployment = "machine";
      iteration = Job_chain; default_sharding = "user-def.";
      work_unit_size = "small"; fault_tolerance = "no"; language = "C++" };
    { system = "GraphChi"; backend = Some Backend.Graph_chi;
      paradigm = "vertex-centric"; unit_of_deployment = "machine";
      iteration = Native; default_sharding = "short";
      work_unit_size = "small"; fault_tolerance = "no"; language = "C++" };
    { system = "X-Stream"; backend = Some Backend.X_stream;
      paradigm = "edge-centric";
      unit_of_deployment = "machine"; iteration = Native;
      default_sharding = "-"; work_unit_size = "med.";
      fault_tolerance = "no"; language = "C++" } ]

let supported = List.filter (fun r -> r.backend <> None) all

let iteration_to_string = function
  | Native -> "native"
  | Job_chain -> "job chain"
  | No_iteration -> "none"

let pp_row ppf r =
  Format.fprintf ppf "%-18s %-22s %-8s %-9s %-9s %-6s %-5s %s"
    (r.system ^ (if r.backend <> None then "*" else ""))
    r.paradigm r.unit_of_deployment
    (iteration_to_string r.iteration)
    r.default_sharding r.work_unit_size r.fault_tolerance r.language
