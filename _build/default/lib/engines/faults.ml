type recovery =
  | Restart
  | Reexecute_tasks of float

let detection_delay_s = 5.

(* work-unit granularity from Table 3's "work unit size" column *)
let granularity_of_unit = function
  | "small" -> 0.02
  | "med." -> 0.08
  | "large" -> 0.20
  | _ -> 0.10

let recovery_of backend =
  let row =
    List.find_opt
      (fun (r : Capabilities.row) -> r.backend = Some backend)
      Capabilities.all
  in
  match row with
  | Some r when r.fault_tolerance <> "no" ->
    Reexecute_tasks (granularity_of_unit r.work_unit_size)
  | Some _ | None -> Restart

let makespan_with_failure backend (report : Report.t) ~at_fraction =
  if at_fraction < 0. || at_fraction > 1. then
    invalid_arg "Faults.makespan_with_failure: fraction outside [0,1]";
  let base = report.makespan_s in
  match recovery_of backend with
  | Restart ->
    (* everything up to the failure is wasted, then run from scratch *)
    (at_fraction *. base) +. base
  | Reexecute_tasks granularity ->
    (* only the failed worker's in-flight tasks re-run, capped by what
       had actually executed *)
    let lost = Float.min at_fraction granularity in
    base +. detection_delay_s +. (lost *. base)

let failure_overhead backend report ~at_fraction =
  makespan_with_failure backend report ~at_fraction /. report.makespan_s
