(** Naiad timely dataflow (paper Table 3; Murray et al., SOSP 2013).

    Low job overhead, excellent iteration support (sub-second epoch
    turnaround) and efficient communication — the best engine for large
    iterative graph workloads at scale (Figure 3b, Figure 8).

    Two properties of the code running *on* Naiad matter enormously and
    are controlled by {!Job.options}:

    - stock Lindi code reads input with a single thread per machine
      (Table 2: Musketeer's patch adds parallel HDFS I/O), crippling
      I/O-bound jobs (Figure 2a);
    - Lindi's high-level GROUP BY is non-associative and collects each
      group's data on one machine; Musketeer emits a vertex-level
      implementation for associative aggregations that scales (the 9×
      of Figure 7). The penalty only applies to jobs that actually
      contain an associative GROUP BY Musketeer could have improved. *)

val engine : Engine.t
