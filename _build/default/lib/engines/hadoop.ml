let backend = Backend.Hadoop

(* Parallel HDFS streaming on every node (0.7 efficiency for ingest,
   0.5 for replicated writes); disk-based processing through the JVM;
   shuffles bounded by the aggregate network. The ~30 s job overhead is
   what operator merging saves per avoided job (§4.3.2, Figure 12). *)
let rates ~(cluster : Cluster.t) ~job:_ ~volumes:_ =
  let n = cluster.nodes in
  { Perf.overhead_s = 28.;
    pull_mb_s = Perf.scaled ~base:(cluster.disk_mb_s *. 0.7) ~nodes:n ~alpha:0.95;
    load_mb_s = None;
    process_mb_s =
      Perf.scaled
        ~base:(float_of_int cluster.cores_per_node *. 30.)
        ~nodes:n ~alpha:0.9;
    comm_mb_s =
      Perf.scaled ~base:(cluster.network_mb_s *. 0.6) ~nodes:n ~alpha:0.9;
    push_mb_s = Perf.scaled ~base:(cluster.disk_mb_s *. 0.5) ~nodes:n ~alpha:0.95;
    iter_overhead_s = 5. }

let engine =
  Engine.of_spec
    { (Engine.default_spec backend) with
      Engine.spec_supports = Admission.mapreduce backend;
      spec_rates = rates }
