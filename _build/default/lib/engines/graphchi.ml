let backend = Backend.Graph_chi

(* One machine. Shard construction is a sort of the edge list (load
   phase); each iteration re-streams the shards from local disk at
   sequential-I/O speed. No network communication at all — "comm"
   (vertex message exchange) happens through the shards, priced at disk
   streaming rate. *)
let rates ~cluster:_ ~job:_ ~volumes =
  let machine = Cluster.single in
  let memory_mb = machine.memory_per_node_gb *. 1024. in
  let in_memory = volumes.Perf.input_mb <= 0.8 *. memory_mb in
  let streaming = machine.disk_mb_s *. 1.6 in
  let compute = float_of_int machine.cores_per_node *. 120. in
  { Perf.overhead_s = 2.;
    pull_mb_s = machine.network_mb_s;
    load_mb_s = Some 100.;
    (* parallel sliding windows: compute-bound while the graph fits in
       memory, sequential-I/O-bound once shards stream from disk *)
    process_mb_s = (if in_memory then compute else Float.min compute streaming);
    comm_mb_s = (if in_memory then 2000. else streaming);
    push_mb_s = machine.network_mb_s;
    iter_overhead_s = 0.4 }

let engine =
  Engine.of_spec
    { (Engine.default_spec backend) with
      Engine.spec_supports = Admission.gas backend;
      spec_rates = rates;
      spec_adjust_volumes =
        (fun ~job ~stats volumes ->
           Engine.gas_message_volumes ~job ~stats volumes) }
