(** PowerGraph (paper Table 3; Gonzalez et al., OSDI 2012).

    Vertex-centric GAS engine for natural (power-law) graphs. Its
    vertex-cut sharding slashes per-iteration communication, making it
    the most resource-efficient distributed engine at moderate scale —
    the paper finds it beats GraphLINQ on 16 nodes while gaining nothing
    beyond that (§2.2 footnote: 32/64 nodes showed no benefit over 16),
    because ingress partitioning and per-iteration coordination grow
    with the node count. Only GAS-idiom jobs are accepted. *)

val engine : Engine.t
