(** Feature matrix of contemporary data processing systems —
    the data behind the paper's Table 3. Rows cover both the seven
    systems Musketeer supports (flagged) and the related systems the
    table lists for context. *)

type iteration_support =
  | Native          (** iterates within one job *)
  | Job_chain       (** iteration = chain of jobs *)
  | No_iteration

type row = {
  system : string;
  backend : Backend.t option;  (** [Some _] iff Musketeer targets it *)
  paradigm : string;
  unit_of_deployment : string; (** "cluster" or "machine" *)
  iteration : iteration_support;
  default_sharding : string;
  work_unit_size : string;
  fault_tolerance : string;
  language : string;
}

val all : row list

val supported : row list

val pp_row : Format.formatter -> row -> unit
