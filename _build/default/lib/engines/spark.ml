let backend = Backend.Spark

let rates ~(cluster : Cluster.t) ~job:_ ~volumes:_ =
  let n = cluster.nodes in
  (* task scheduling on Spark 0.9 is comparatively slow; the paper's
     motivation experiments call out its "overhead due to constructing
     in-memory state and scheduling tasks sub-optimally" *)
  { Perf.overhead_s = 14.;
    pull_mb_s = Perf.scaled ~base:(cluster.disk_mb_s *. 0.7) ~nodes:n ~alpha:0.95;
    (* RDD materialization: deserialize + build partitions in memory *)
    load_mb_s = Some (Perf.scaled ~base:75. ~nodes:n ~alpha:0.9);
    process_mb_s =
      Perf.scaled
        ~base:(float_of_int cluster.cores_per_node *. 60.)
        ~nodes:n ~alpha:0.9;
    comm_mb_s =
      Perf.scaled ~base:(cluster.network_mb_s *. 0.7) ~nodes:n ~alpha:0.9;
    push_mb_s = Perf.scaled ~base:(cluster.disk_mb_s *. 0.5) ~nodes:n ~alpha:0.95;
    iter_overhead_s = 2.5 }

(* RDD lineage keeps inputs plus the largest intermediates resident;
   with serialization overhead Spark effectively needs several times the
   raw data size in RAM. *)
let admit ~(cluster : Cluster.t) ~job:_ ~volumes ~stats =
  let memory_mb = Cluster.total_memory_gb cluster *. 1024. in
  let peak_intermediate_mb =
    List.fold_left
      (fun acc (s : Exec_helper.op_stat) -> max acc s.out_mb)
      volumes.Perf.input_mb stats
  in
  if 2.6 *. peak_intermediate_mb > memory_mb then
    Error
      (Report.Out_of_memory
         (Printf.sprintf
            "RDD working set ~%.0f MB exceeds cluster memory %.0f MB"
            (2.6 *. peak_intermediate_mb)
            memory_mb))
  else Ok ()

(* every transformation materializes an RDD: intermediates pass the
   load phase too, not just the workflow input *)
let adjust_volumes ~job:_ ~stats volumes =
  let intermediates =
    List.fold_left
      (fun acc (s : Exec_helper.op_stat) -> acc +. s.out_mb)
      0. stats
  in
  { volumes with Perf.load_mb = volumes.Perf.input_mb +. intermediates }

let engine =
  Engine.of_spec
    { (Engine.default_spec backend) with
      Engine.spec_supports = Admission.general backend;
      spec_rates = rates;
      spec_admit = admit;
      spec_adjust_volumes = adjust_volumes }
