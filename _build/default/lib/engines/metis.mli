(** Metis: single-machine, multicore MapReduce (paper Table 3; Mao et
    al., MIT-CSAIL-TR-2010-020).

    Best-in-class for small inputs (Figure 2a: it wins below ~0.5–2 GB)
    because it has almost no startup cost and uses all cores of one
    machine; once the input exceeds main memory, its in-memory design
    degrades sharply. Like Hadoop it can express only one group-by-key
    per job. *)

val engine : Engine.t
