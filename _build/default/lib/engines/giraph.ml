let backend = Backend.Giraph

(* Hash-partitioned vertices: no vertex-cut, so the full message volume
   crosses the network each superstep; JVM workers process moderately;
   Hadoop-style startup and per-superstep checkpointing. *)
let rates ~(cluster : Cluster.t) ~job:_ ~volumes:_ =
  let n = cluster.nodes in
  { Perf.overhead_s = 20.;
    pull_mb_s = Perf.scaled ~base:(cluster.disk_mb_s *. 0.6) ~nodes:n ~alpha:0.9;
    load_mb_s = Some (Perf.scaled ~base:120. ~nodes:n ~alpha:0.8);
    process_mb_s =
      Perf.scaled
        ~base:(float_of_int cluster.cores_per_node *. 40.)
        ~nodes:n ~alpha:0.75;
    comm_mb_s =
      Perf.scaled ~base:(cluster.network_mb_s *. 0.7) ~nodes:n ~alpha:0.75;
    push_mb_s = Perf.scaled ~base:(cluster.disk_mb_s *. 0.5) ~nodes:n ~alpha:0.9;
    iter_overhead_s = 2.0 +. (0.05 *. float_of_int n) }

let engine =
  Engine.of_spec
    { (Engine.default_spec backend) with
      Engine.spec_supports = Admission.gas backend;
      spec_rates = rates;
      spec_adjust_volumes =
        (fun ~job ~stats volumes ->
           Engine.gas_message_volumes ~job ~stats volumes) }
