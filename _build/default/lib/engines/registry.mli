(** Lookup from {!Backend.t} to its engine simulator. *)

val find : Backend.t -> Engine.t

val all : Engine.t list

(** [run backend ~cluster ~hdfs job] — convenience dispatch. *)
val run :
  Backend.t -> cluster:Cluster.t -> hdfs:Hdfs.t -> Job.t ->
  (Report.t, Report.error) result

(** [supports backend graph] — can one job of [backend] express it? *)
val supports : Backend.t -> Ir.Operator.graph -> (unit, string) result
