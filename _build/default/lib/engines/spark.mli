(** Spark (paper Table 3; Zaharia et al., NSDI 2012).

    Moderate job overhead and fast in-memory transformations, but every
    input is first materialized into a distributed RDD — wasted work for
    single-pass workflows with no data re-use, which is why it trails
    Hadoop on the PROJECT micro-benchmark (Figure 2a). RDDs must fit in
    aggregate cluster memory: jobs whose intermediates blow past it fail
    with OOM, as the paper's k-means CROSS JOIN does (Figure 15b). *)

val engine : Engine.t
