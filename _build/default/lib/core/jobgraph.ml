let extract_mapped (g : Ir.Dag.t) ids =
  if ids = [] then invalid_arg "Jobgraph.extract: empty job";
  if not (Ir.Dag.convex g ids) then
    invalid_arg "Jobgraph.extract: node set is not convex";
  let in_set = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace in_set id ()) ids;
  let b = Ir.Builder.create () in
  (* old node id -> builder handle *)
  let handles : (int, Ir.Builder.handle) Hashtbl.t = Hashtbl.create 8 in
  (* external relation name -> input handle (shared across consumers) *)
  let ext_inputs : (string, Ir.Builder.handle) Hashtbl.t = Hashtbl.create 8 in
  let input_for relation =
    match Hashtbl.find_opt ext_inputs relation with
    | Some h -> h
    | None ->
      let h = Ir.Builder.input b relation in
      Hashtbl.replace ext_inputs relation h;
      h
  in
  let members =
    List.filter
      (fun (n : Ir.Operator.node) -> Hashtbl.mem in_set n.id)
      (Ir.Dag.topological_order g)
  in
  List.iter
    (fun (n : Ir.Operator.node) ->
       let handle =
         match n.kind with
         | Ir.Operator.Input { relation } ->
           (* a workflow INPUT node inside the job reads HDFS directly *)
           input_for relation
         | kind ->
           let input_handles =
             List.map
               (fun i ->
                  match Hashtbl.find_opt handles i with
                  | Some h -> h
                  | None ->
                    (* produced by another job: read via HDFS *)
                    input_for (Ir.Dag.node g i).Ir.Operator.output)
               n.inputs
           in
           (* mirror the original node through the builder *)
           Rebuild.copy_node b ~name:n.output kind input_handles
       in
       Hashtbl.replace handles n.id handle)
    members;
  let ext_outs = Ir.Dag.external_outputs g ids in
  let out_handles =
    List.filter_map
      (fun (n : Ir.Operator.node) ->
         match n.kind with
         | Ir.Operator.Input _ -> None (* re-exporting an input is a no-op *)
         | _ -> Hashtbl.find_opt handles n.id)
      ext_outs
  in
  let out_handles =
    if out_handles = [] then
      (* a job of pure inputs (degenerate); expose them *)
      List.filter_map (fun (n : Ir.Operator.node) ->
          Hashtbl.find_opt handles n.id)
        ext_outs
    else out_handles
  in
  let mapping =
    Hashtbl.fold
      (fun old_id h acc -> (Ir.Builder.id h, old_id) :: acc)
      handles []
  in
  (Ir.Builder.finish b ~outputs:out_handles, mapping)

let extract g ids = fst (extract_mapped g ids)

let job_order (g : Ir.Dag.t) partition =
  let job_of = Hashtbl.create 16 in
  List.iteri
    (fun j ids -> List.iter (fun id -> Hashtbl.replace job_of id j) ids)
    partition;
  let njobs = List.length partition in
  let edges = Hashtbl.create 16 in
  List.iter
    (fun (n : Ir.Operator.node) ->
       match Hashtbl.find_opt job_of n.id with
       | None -> ()
       | Some j ->
         List.iter
           (fun i ->
              match Hashtbl.find_opt job_of i with
              | Some j' when j' <> j -> Hashtbl.replace edges (j', j) ()
              | _ -> ())
           n.inputs)
    g.Ir.Operator.nodes;
  (* Kahn over the job graph *)
  let indeg = Array.make njobs 0 in
  Hashtbl.iter (fun (_, dst) () -> indeg.(dst) <- indeg.(dst) + 1) edges;
  let order = ref [] in
  let remaining = ref (List.init njobs (fun i -> i)) in
  let rec go () =
    match List.filter (fun j -> indeg.(j) = 0) !remaining with
    | [] ->
      if !remaining <> [] then
        invalid_arg "Jobgraph.job_order: cyclic job dependencies";
    | ready ->
      List.iter
        (fun j ->
           order := j :: !order;
           indeg.(j) <- -1;
           Hashtbl.iter
             (fun (src, dst) () ->
                if src = j then indeg.(dst) <- indeg.(dst) - 1)
             edges)
        ready;
      remaining := List.filter (fun j -> indeg.(j) >= 0) !remaining;
      go ()
  in
  go ();
  List.map (List.nth partition) (List.rev !order)
