open Relation

type t = {
  cluster : Engines.Cluster.t;
  table : (Engines.Backend.t * Engines.Perf.rates) list;
}

let cluster t = t.cluster

let rates t backend =
  match List.assoc_opt backend t.table with
  | Some r -> r
  | None -> invalid_arg ("Profile.rates: " ^ Engines.Backend.name backend)

(* ---- probe data ---- *)

let pair_schema =
  Schema.make [ { Schema.name = "k"; ty = Value.Tint };
                { Schema.name = "v"; ty = Value.Tint } ]

let pair_table n seed =
  let state = Random.State.make [| seed |] in
  Table.create_unchecked pair_schema
    (Array.init n (fun i ->
         [| Value.Int (Random.State.int state (max 1 (n / 2)));
            Value.Int i |]))

let rank_schema =
  Schema.make
    [ { Schema.name = "id"; ty = Value.Tint };
      { Schema.name = "rank"; ty = Value.Tfloat };
      { Schema.name = "degree"; ty = Value.Tint } ]

let edge_schema =
  Schema.make [ { Schema.name = "src"; ty = Value.Tint };
                { Schema.name = "dst"; ty = Value.Tint } ]

(* ring + self-loop graph: every vertex has in-edges, degree 2 *)
let probe_graph n =
  let ranks =
    Table.create_unchecked rank_schema
      (Array.init n (fun i ->
           [| Value.Int i; Value.Float 1.0; Value.Int 2 |]))
  in
  let edges =
    Table.create_unchecked edge_schema
      (Array.init (2 * n) (fun e ->
           let i = e / 2 in
           if e mod 2 = 0 then [| Value.Int i; Value.Int ((i + 1) mod n) |]
           else [| Value.Int i; Value.Int i |]))
  in
  (ranks, edges)

(* ---- probe job graphs ---- *)

let scan_graph () =
  let b = Ir.Builder.create () in
  let inp = Ir.Builder.input b "cal_scan" in
  let sel =
    Ir.Builder.select b ~name:"cal_scan_out" ~pred:(Expr.bool true) inp
  in
  Ir.Builder.finish b ~outputs:[ sel ]

let join_graph () =
  let b = Ir.Builder.create () in
  let l = Ir.Builder.input b "cal_l" in
  let r = Ir.Builder.input b "cal_r" in
  let j =
    Ir.Builder.join b ~name:"cal_join_out" ~left_key:"k" ~right_key:"k" l r
  in
  Ir.Builder.finish b ~outputs:[ j ]

let pagerank_graph ~iterations =
  let body_b = Ir.Builder.create () in
  let ranks = Ir.Builder.input body_b "cal_ranks" in
  let edges = Ir.Builder.input body_b "cal_edges" in
  let j =
    Ir.Builder.join body_b ~left_key:"src" ~right_key:"id" edges ranks
  in
  let contrib =
    Ir.Builder.map body_b ~target:"contrib"
      ~expr:Expr.(col "rank" / col "degree")
      j
  in
  let msgs = Ir.Builder.project body_b ~columns:[ "dst"; "contrib" ] contrib in
  let sums =
    Ir.Builder.group_by body_b ~keys:[ "dst" ]
      ~aggs:[ Aggregate.make (Aggregate.Sum "contrib") ~as_name:"recv" ]
      msgs
  in
  let j2 = Ir.Builder.join body_b ~left_key:"id" ~right_key:"dst" ranks sums in
  let newrank =
    Ir.Builder.map body_b ~target:"rank"
      ~expr:Expr.(float 0.15 + (float 0.85 * col "recv"))
      j2
  in
  let out =
    Ir.Builder.project body_b ~name:"cal_ranks"
      ~columns:[ "id"; "rank"; "degree" ] newrank
  in
  let body =
    Ir.Builder.finish_body body_b ~outputs:[ out ]
      ~loop_carried:[ "cal_ranks" ]
  in
  let b = Ir.Builder.create () in
  let ranks0 = Ir.Builder.input b "cal_ranks" in
  let edges0 = Ir.Builder.input b "cal_edges" in
  let loop =
    Ir.Builder.while_ b ~name:"cal_pr_out"
      ~condition:(Ir.Operator.Fixed_iterations iterations)
      ~max_iterations:(iterations + 1) ~body [ ranks0; edges0 ]
  in
  Ir.Builder.finish b ~outputs:[ loop ]

(* ---- rate derivation ---- *)

let rate volume seconds = if seconds <= 0. then None else Some (volume /. seconds)

let or_default opt default = Option.value opt ~default

let probe_general ~cluster ~hdfs backend ~probe_mb =
  let run graph label =
    let job =
      Engines.Job.make ~options:Engines.Job.baseline_options ~label ~backend graph
    in
    let volumes = (Engines.Exec_helper.execute ~hdfs:(Engines.Hdfs.snapshot hdfs) graph).volumes in
    match Engines.Registry.run backend ~cluster ~hdfs:(Engines.Hdfs.snapshot hdfs) job with
    | Ok report -> Some (report, volumes)
    | Error _ -> None
  in
  let scan = run (scan_graph ()) "cal_scan" in
  let join = run (join_graph ()) "cal_join" in
  match scan with
  | None -> None
  | Some (scan_report, scan_volumes) ->
    let b = scan_report.Engines.Report.breakdown in
    let pull = or_default (rate scan_report.Engines.Report.input_mb b.Engines.Report.pull_s) 100. in
    let push = or_default (rate scan_report.Engines.Report.output_mb b.Engines.Report.push_s) 100. in
    let process =
      or_default (rate scan_volumes.Engines.Perf.process_mb b.Engines.Report.process_s) 500.
    in
    let load = rate scan_report.Engines.Report.input_mb b.Engines.Report.load_s in
    let comm =
      match join with
      | Some (join_report, join_volumes) ->
        or_default
          (rate join_volumes.Engines.Perf.comm_mb
             join_report.Engines.Report.breakdown.Engines.Report.comm_s)
          500.
      | None -> 500.
    in
    ignore probe_mb;
    Some
      { Engines.Perf.overhead_s = b.Engines.Report.overhead_s; pull_mb_s = pull;
        load_mb_s = load; process_mb_s = process; comm_mb_s = comm;
        push_mb_s = push;
        (* refined below for engines that iterate natively *)
        iter_overhead_s = b.Engines.Report.overhead_s }

let probe_iteration ~cluster ~hdfs backend base =
  let run iterations =
    let job =
      Engines.Job.make ~options:Engines.Job.baseline_options
        ~label:(Printf.sprintf "cal_pr_%d" iterations)
        ~backend
        (pagerank_graph ~iterations)
    in
    Engines.Registry.run backend ~cluster ~hdfs:(Engines.Hdfs.snapshot hdfs) job
  in
  match run 1, run 4 with
  | Ok r1, Ok r4 ->
    (* per-iteration volume costs are inside both makespans; the probe
       isolates the fixed synchronization cost by predicting the volume
       delta with the already-derived rates *)
    let volumes k =
      (Engines.Exec_helper.execute ~hdfs:(Engines.Hdfs.snapshot hdfs)
         (pagerank_graph ~iterations:k))
        .Engines.Exec_helper.volumes
    in
    let v1 = volumes 1 and v4 = volumes 4 in
    let delta_process =
      (v4.Engines.Perf.process_mb -. v1.Engines.Perf.process_mb) /. base.Engines.Perf.process_mb_s
    and delta_comm =
      (v4.Engines.Perf.comm_mb -. v1.Engines.Perf.comm_mb) /. base.Engines.Perf.comm_mb_s
    in
    let measured = r4.Engines.Report.makespan_s -. r1.Engines.Report.makespan_s in
    let iter_overhead =
      Float.max 0.05 ((measured -. delta_process -. delta_comm) /. 3.)
    in
    { base with Engines.Perf.iter_overhead_s = iter_overhead }
  | _ -> base

let probe_gas ~cluster ~hdfs backend =
  let run iterations options_label =
    let job =
      Engines.Job.make ~options:Engines.Job.baseline_options ~label:options_label ~backend
        (pagerank_graph ~iterations)
    in
    match Engines.Registry.run backend ~cluster ~hdfs:(Engines.Hdfs.snapshot hdfs) job with
    | Ok r ->
      (* a GAS runtime only ships the gathered messages; derive the rates
         from the volumes the engine actually moves, or the calibration
         would overstate its bandwidth *)
      let exec =
        Engines.Exec_helper.execute ~hdfs:(Engines.Hdfs.snapshot hdfs)
          (pagerank_graph ~iterations)
      in
      let volumes =
        Engines.Engine.gas_message_volumes ~job
          ~stats:exec.Engines.Exec_helper.op_stats
          exec.Engines.Exec_helper.volumes
      in
      Some (r, volumes)
    | Error _ -> None
  in
  match run 4 "cal_gas" with
  | None -> None
  | Some (r, v) ->
    let b = r.Engines.Report.breakdown in
    let pull = or_default (rate r.Engines.Report.input_mb b.Engines.Report.pull_s) 100. in
    let push = or_default (rate r.Engines.Report.output_mb b.Engines.Report.push_s) 100. in
    let process = or_default (rate v.Engines.Perf.process_mb b.Engines.Report.process_s) 300. in
    let comm = or_default (rate v.Engines.Perf.comm_mb b.Engines.Report.comm_s) 300. in
    let load = rate r.Engines.Report.input_mb b.Engines.Report.load_s in
    let base =
      { Engines.Perf.overhead_s = b.Engines.Report.overhead_s; pull_mb_s = pull;
        load_mb_s = load; process_mb_s = process; comm_mb_s = comm;
        push_mb_s = push; iter_overhead_s = 1. }
    in
    Some (probe_iteration ~cluster ~hdfs backend base)

let calibrate ?(probe_mb = 1024.) ~cluster () =
  let hdfs = Engines.Hdfs.create () in
  Engines.Hdfs.put hdfs "cal_scan" ~modeled_mb:probe_mb (pair_table 4096 1);
  Engines.Hdfs.put hdfs "cal_l" ~modeled_mb:(probe_mb /. 2.) (pair_table 2048 2);
  Engines.Hdfs.put hdfs "cal_r" ~modeled_mb:(probe_mb /. 2.) (pair_table 2048 3);
  let ranks, edges = probe_graph 512 in
  Engines.Hdfs.put hdfs "cal_ranks" ~modeled_mb:(probe_mb /. 8.) ranks;
  Engines.Hdfs.put hdfs "cal_edges" ~modeled_mb:probe_mb edges;
  let probe backend =
    let result =
      if Engines.Backend.gas_only backend then probe_gas ~cluster ~hdfs backend
      else
        match probe_general ~cluster ~hdfs backend ~probe_mb with
        | Some base when Engines.Backend.general_purpose backend ->
          Some (probe_iteration ~cluster ~hdfs backend base)
        | other -> other
    in
    Option.map (fun r -> (backend, r)) result
  in
  (* the two extension engines are calibrated too, so planning with
     ~backends:Engines.Backend.extended works out of the box *)
  { cluster; table = List.filter_map probe Engines.Backend.extended }

let pp ppf t =
  Format.fprintf ppf
    "%-12s %9s %9s %9s %9s %9s %9s@."
    "Back-end" "OVERHEAD" "PULL" "LOAD" "PROCESS" "COMM" "PUSH";
  List.iter
    (fun (backend, r) ->
       Format.fprintf ppf "%-12s %8.1fs %7.0f/s %9s %7.0f/s %7.0f/s %7.0f/s@."
         (Engines.Backend.name backend) r.Engines.Perf.overhead_s r.Engines.Perf.pull_mb_s
         (match r.Engines.Perf.load_mb_s with
          | None -> "-"
          | Some l -> Printf.sprintf "%.0f/s" l)
         r.Engines.Perf.process_mb_s r.Engines.Perf.comm_mb_s r.Engines.Perf.push_mb_s)
    t.table
