(** Mergeability rules (paper §4.3.2), evaluated directly on a node
    subset of the workflow DAG.

    This mirrors the engines' admission checks ({!Engines.Admission})
    without materializing a job graph, so the partitioning algorithms
    can score thousands of candidate jobs cheaply. [check] also accepts
    a WHILE on MapReduce-style engines when the WHILE is the only
    operator in the job — the executor expands such jobs into
    per-iteration job chains (§4.2), which is how the paper runs
    PageRank on Hadoop. *)

type while_policy =
  | Native_iteration        (** WHILE runs inside one engine job *)
  | Expand_per_iteration    (** executor drives the loop as job chains *)
  | No_while

(** How [backend] would run a WHILE node. *)
val while_support : Engines.Backend.t -> while_policy

(** [check backend g ids] — can [ids] (operator nodes of [g]) form one
    job on [backend]? Checks paradigm expressivity; connectivity and
    convexity are the partitioner's concern. *)
val check :
  Engines.Backend.t -> Ir.Dag.t -> int list -> (unit, string) result

val check_bool : Engines.Backend.t -> Ir.Dag.t -> int list -> bool
