(** Query-rewriting optimizations on the IR (paper §4.2).

    The rewrites reorder operators so selective ones run closer to the
    start of the workflow, shrinking intermediate data volumes — the
    benefit applies to every front-end and back-end at once, which is
    the LLVM-style payoff of optimizing at the common IR level.

    Implemented rewrites (applied to fixpoint, also inside WHILE
    bodies):
    - SELECT push-down through JOIN (to the side that provides all the
      predicate's columns);
    - SELECT push-down through MAP (when the predicate ignores the
      mapped column);
    - SELECT push-down through UNION and DIFFERENCE (the select is
      cloned into both branches) and through DISTINCT;
    - fusion of adjacent SELECTs into one conjunctive predicate;
    - dead-operator elimination;
    - dead-column elimination over workflow inputs ({!Column_pruning}).

    [catalog] supplies workflow-input schemas so predicate columns can
    be attributed to join sides. The rewritten graph is re-validated
    and semantics-preserving: tests check output equality on random
    data. *)

val optimize :
  catalog:(string -> Relation.Schema.t) -> Ir.Dag.t -> Ir.Dag.t

(** Number of rewrites the last [optimize] call applied (diagnostics;
    not thread-safe). *)
val last_rewrite_count : unit -> int
