open Relation

let agg_call (a : Aggregate.t) =
  match a.fn with
  | Aggregate.Count -> "count()"
  | Aggregate.Sum c -> Printf.sprintf "sum(%s)" c
  | Aggregate.Min c -> Printf.sprintf "min(%s)" c
  | Aggregate.Max c -> Printf.sprintf "max(%s)" c
  | Aggregate.Avg c -> Printf.sprintf "avg(%s)" c
  | Aggregate.First c -> Printf.sprintf "first(%s)" c

let input_name (g : Ir.Operator.graph) id =
  (Ir.Dag.node g id).Ir.Operator.output

(* ------------- Spark (Scala-like RDD chains) ------------- *)

let rec spark_lines ~shared_scans (g : Ir.Operator.graph) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (n : Ir.Operator.node) ->
       let arg i = input_name g (List.nth n.inputs i) in
       match n.kind with
       | Ir.Operator.Input { relation } ->
         line "val %s = sc.textFile(\"hdfs:///%s\").map(parse)" n.output
           relation
       | Ir.Operator.Select { pred } ->
         line "val %s = %s.filter(t => %s)" n.output (arg 0)
           (Expr.to_string pred)
       | Ir.Operator.Project { columns } ->
         if shared_scans then
           line "val %s = %s.map(t => (%s))  // fused scan" n.output (arg 0)
             (String.concat ", " columns)
         else begin
           line "val %s_cols = %s.map(t => t)       // naive: extra pass"
             n.output (arg 0);
           line "val %s = %s_cols.map(t => (%s))" n.output n.output
             (String.concat ", " columns)
         end
       | Ir.Operator.Map { target; expr } ->
         line "val %s = %s.map(t => t.copy(%s = %s))" n.output (arg 0) target
           (Expr.to_string expr)
       | Ir.Operator.Join { left_key; right_key } ->
         if shared_scans then begin
           line "val %s = %s.keyBy(_.%s).join(%s.keyBy(_.%s))" n.output
             (arg 0) left_key (arg 1) right_key;
           line "  .map { case (k, (l, r)) => flatten(k, l, r) }  \
                 // look-ahead typed"
         end
         else begin
           line "val %s_l = %s.map(t => (t.%s, t))" n.output (arg 0) left_key;
           line "val %s_r = %s.map(t => (t.%s, t))" n.output (arg 1) right_key;
           line "val %s_j = %s_l.join(%s_r)" n.output n.output n.output;
           line "val %s = %s_j.map { case (k, (l, r)) => flatten(k, l, r) }"
             n.output n.output
         end
       | Ir.Operator.Left_outer_join { left_key; right_key; _ } ->
         line "val %s = %s.keyBy(_.%s).leftOuterJoin(%s.keyBy(_.%s))"
           n.output (arg 0) left_key (arg 1) right_key;
         line "  .map { case (k, (l, r)) => flatten(k, l, r.getOrElse(defaults)) }"
       | Ir.Operator.Semi_join { left_key; right_key } ->
         line "val %s = %s.keyBy(_.%s).join(%s.map(t => (t.%s, ())).distinct()).map(_._2._1)"
           n.output (arg 0) left_key (arg 1) right_key
       | Ir.Operator.Anti_join { left_key; right_key } ->
         line "val %s = %s.keyBy(_.%s).subtractByKey(%s.keyBy(_.%s)).map(_._2)"
           n.output (arg 0) left_key (arg 1) right_key
       | Ir.Operator.Cross ->
         line "val %s = %s.cartesian(%s)" n.output (arg 0) (arg 1)
       | Ir.Operator.Union ->
         line "val %s = %s.union(%s)" n.output (arg 0) (arg 1)
       | Ir.Operator.Intersect ->
         line "val %s = %s.intersection(%s)" n.output (arg 0) (arg 1)
       | Ir.Operator.Difference ->
         line "val %s = %s.subtract(%s)" n.output (arg 0) (arg 1)
       | Ir.Operator.Distinct ->
         line "val %s = %s.distinct()" n.output (arg 0)
       | Ir.Operator.Group_by { keys; aggs } ->
         line "val %s = %s.map(t => ((%s), t)).reduceByKey(%s)" n.output
           (arg 0)
           (String.concat ", " keys)
           (String.concat "; " (List.map agg_call aggs))
       | Ir.Operator.Agg { aggs } ->
         line "val %s = %s.aggregate(%s)" n.output (arg 0)
           (String.concat "; " (List.map agg_call aggs))
       | Ir.Operator.Sort { by; descending } ->
         line "val %s = %s.sortBy(_.%s)%s" n.output (arg 0) by
           (if descending then ".reverse" else "")
       | Ir.Operator.Top_k { by; descending; k } ->
         line "val %s = %s.top(%d)(Ordering.by(_.%s))%s" n.output (arg 0) k
           by
           (if descending then "" else ".reverse")
       | Ir.Operator.Udf u ->
         line "val %s = udf_%s(%s)" n.output u.udf_name
           (String.concat ", "
              (List.mapi (fun i _ -> arg i) n.inputs))
       | Ir.Operator.While { condition; max_iterations; body } ->
         line "var iter = 0";
         line "while (%s) {  // max %d"
           (match condition with
            | Ir.Operator.Fixed_iterations k -> Printf.sprintf "iter < %d" k
            | Ir.Operator.Until_empty r -> Printf.sprintf "!%s.isEmpty()" r
            | Ir.Operator.Until_fixpoint r -> Printf.sprintf "%s != %s_prev" r r)
           max_iterations;
         Buffer.add_string buf
           (String.concat "\n"
              (List.map (fun l -> "  " ^ l)
                 (String.split_on_char '\n'
                    (spark_lines ~shared_scans body))));
         line "";
         line "  iter += 1";
         line "}"
       | Ir.Operator.Black_box { description; _ } ->
         line "// black box: %s" description)
    g.nodes;
  List.iter
    (fun id ->
       line "%s.saveAsTextFile(\"hdfs:///%s\")" (input_name g id)
         (input_name g id))
    g.outputs;
  Buffer.contents buf

(* ------------- Hadoop / Metis (MapReduce pseudo-Java) ------------- *)

let mapreduce_lines ~engine (g : Ir.Operator.graph) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "// %s job: map phase fuses scans; one shuffle; reduce phase" engine;
  line "public void map(LongWritable k, Text value) {";
  List.iter
    (fun (n : Ir.Operator.node) ->
       match n.kind with
       | Ir.Operator.Input { relation } ->
         line "  Row t = parse(value);  // from hdfs:///%s" relation
       | Ir.Operator.Select { pred } ->
         line "  if (!(%s)) return;" (Expr.to_string pred)
       | Ir.Operator.Project { columns } ->
         line "  t = t.project(%s);" (String.concat ", " columns)
       | Ir.Operator.Map { target; expr } ->
         line "  t.%s = %s;" target (Expr.to_string expr)
       | Ir.Operator.Join { left_key; right_key } ->
         line "  emit(tag(t, t.%s /* or %s */), t);  // repartition join"
           left_key right_key
       | Ir.Operator.Group_by { keys; _ } ->
         line "  emit((%s), t);" (String.concat ", " keys)
       | Ir.Operator.Agg _ -> line "  emit(NULL_KEY, t);"
       | _ -> ())
    g.nodes;
  line "}";
  line "public void reduce(Key k, Iterable<Row> rows) {";
  List.iter
    (fun (n : Ir.Operator.node) ->
       match n.kind with
       | Ir.Operator.Join _ ->
         line "  // build left side, stream right side";
         line "  for (Row r : rows) collect(flatten(k, r));"
       | Ir.Operator.Group_by { aggs; _ } | Ir.Operator.Agg { aggs } ->
         List.iter
           (fun a -> line "  acc = combine(acc, %s);" (agg_call a))
           aggs;
         line "  collect(acc);"
       | Ir.Operator.Intersect ->
         line "  if (seenInBoth(rows)) collect(k);"
       | Ir.Operator.Difference ->
         line "  if (onlyInLeft(rows)) collect(k);"
       | Ir.Operator.Distinct -> line "  collect(k);  // first per key"
       | _ -> ())
    g.nodes;
  line "}";
  Buffer.contents buf

(* ------------- Naiad (C#-like timely dataflow) ------------- *)

let naiad_lines ~shared_scans (g : Ir.Operator.graph) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (n : Ir.Operator.node) ->
       let arg i = input_name g (List.nth n.inputs i) in
       match n.kind with
       | Ir.Operator.Input { relation } ->
         line "var %s = controller.ReadFromHdfs(\"%s\")%s;" n.output relation
           (if shared_scans then "  // parallel readers"
            else "  // single reader thread")
       | Ir.Operator.Select { pred } ->
         line "var %s = %s.Where(t => %s);" n.output (arg 0)
           (Expr.to_string pred)
       | Ir.Operator.Project { columns } ->
         line "var %s = %s.Select(t => new { %s });" n.output (arg 0)
           (String.concat ", " columns)
       | Ir.Operator.Map { target; expr } ->
         line "var %s = %s.Select(t => t With { %s = %s });" n.output (arg 0)
           target (Expr.to_string expr)
       | Ir.Operator.Join { left_key; right_key } ->
         line "var %s = %s.Join(%s, l => l.%s, r => r.%s, Flatten);" n.output
           (arg 0) (arg 1) left_key right_key
       | Ir.Operator.Group_by { keys; aggs } ->
         if shared_scans then
           line
             "var %s = %s.VertexAggregate(t => (%s), %s);  \
              // low-level vertex API (associative)"
             n.output (arg 0)
             (String.concat ", " keys)
             (String.concat "; " (List.map agg_call aggs))
         else
           line
             "var %s = %s.GroupBy(t => (%s), (k, ts) => %s);  \
              // Lindi collect-based GROUP BY"
             n.output (arg 0)
             (String.concat ", " keys)
             (String.concat "; " (List.map agg_call aggs))
       | Ir.Operator.While { condition; max_iterations; _ } ->
         line "var loop = %s.Iterate((lc, s) => Body(s), %d);  // %s"
           n.output max_iterations
           (match condition with
            | Ir.Operator.Fixed_iterations k ->
              Printf.sprintf "%d fixed iterations" k
            | Ir.Operator.Until_empty r -> "until " ^ r ^ " empty"
            | Ir.Operator.Until_fixpoint r -> "until " ^ r ^ " fixpoint")
       | kind -> line "var %s = %s(...);" n.output (Ir.Operator.kind_name kind))
    g.nodes;
  Buffer.contents buf

(* ------------- PowerGraph / GraphChi (GAS vertex program) ------------- *)

let gas_lines ~engine (g : Ir.Operator.graph) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "// %s vertex program generated from the GAS idiom" engine;
  let emit_body (body : Ir.Operator.graph) =
    List.iter
      (fun (n : Ir.Operator.node) ->
         match n.kind with
         | Ir.Operator.Group_by { aggs; _ } ->
           line "gather_type gather(icontext, vertex, edge) {";
           List.iter (fun a -> line "  return %s;" (agg_call a)) aggs;
           line "}"
         | Ir.Operator.Map { target; expr } ->
           line "void apply(icontext, vertex, gather_total) {";
           line "  vertex.data().%s = %s;" target (Expr.to_string expr);
           line "}"
         | Ir.Operator.Join _ ->
           line "void scatter(icontext, vertex, edge) {";
           line "  signal(edge.target());  // send state along out-edges";
           line "}"
         | _ -> ())
      body.nodes
  in
  List.iter
    (fun (n : Ir.Operator.node) ->
       match n.kind with
       | Ir.Operator.While { body; max_iterations; _ } ->
         line "// up to %d supersteps" max_iterations;
         emit_body body
       | _ -> ())
    g.nodes;
  Buffer.contents buf

(* ------------- serial C ------------- *)

let c_lines (g : Ir.Operator.graph) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "int main(void) {";
  List.iter
    (fun (n : Ir.Operator.node) ->
       match n.kind with
       | Ir.Operator.Input { relation } ->
         line "  rows_t %s = read_hdfs(\"%s\");" n.output relation
       | Ir.Operator.Select { pred } ->
         line "  rows_t %s = filter(%s, /* %s */);" n.output
           (input_name g (List.hd n.inputs))
           (Expr.to_string pred)
       | Ir.Operator.Join { left_key; right_key } ->
         line "  rows_t %s = hash_join(%s, %s, %s, %s);" n.output
           (input_name g (List.nth n.inputs 0))
           (input_name g (List.nth n.inputs 1))
           left_key right_key
       | Ir.Operator.Group_by { keys; _ } ->
         line "  rows_t %s = group_by(%s, (%s));" n.output
           (input_name g (List.hd n.inputs))
           (String.concat ", " keys)
       | kind ->
         line "  /* %s -> %s */" (Ir.Operator.kind_name kind) n.output)
    g.nodes;
  List.iter
    (fun id -> line "  write_hdfs(\"%s\", %s);" (input_name g id)
        (input_name g id))
    g.outputs;
  line "  return 0;";
  line "}";
  Buffer.contents buf

let render backend ~shared_scans (g : Ir.Operator.graph) =
  match backend with
  | Engines.Backend.Spark -> spark_lines ~shared_scans g
  | Engines.Backend.Hadoop -> mapreduce_lines ~engine:"Hadoop" g
  | Engines.Backend.Metis -> mapreduce_lines ~engine:"Metis" g
  | Engines.Backend.Naiad -> naiad_lines ~shared_scans g
  | Engines.Backend.Power_graph -> gas_lines ~engine:"PowerGraph" g
  | Engines.Backend.Graph_chi -> gas_lines ~engine:"GraphChi" g
  | Engines.Backend.Giraph -> gas_lines ~engine:"Giraph" g
  | Engines.Backend.X_stream -> gas_lines ~engine:"X-Stream" g
  | Engines.Backend.Serial_c -> c_lines g
