(** DAG partitioning and back-end selection (paper §5).

    Partitioning the IR DAG into jobs is an instance of k-way graph
    partitioning (NP-hard), for all k up to the operator count. Two
    algorithms are provided, behind {!partition} which switches on DAG
    size like the paper's prototype:

    - {!exhaustive}: explores every partition of the operators into
      connected, convex sets, scoring each set with the cheapest
      feasible back-end. Exponential; the paper uses it up to ~13–18
      operators (§6.6).
    - {!dynamic}: the dynamic-programming heuristic of §5.1.2 —
      topologically linearize, then optimally split the linear order
      into contiguous segments. Linear in practice, but it can miss
      merges whose operators are not adjacent in the chosen order
      (§8, Figure 16); {!dynamic_multi_order} retries over several
      linearizations, the fix the paper suggests.

    Job sets are scored with {!Cost.job_cost}, so automatic back-end
    mapping (§5.2) falls out: pass every available backend in
    [backends] and each job independently picks its cheapest engine.
    Restricting [backends] to a singleton forces a manual mapping. *)

type plan = {
  jobs : (Engines.Backend.t * int list) list;
      (** node-id sets with their chosen engines, in execution order *)
  cost_s : float;  (** estimated workflow cost under the cost model *)
}

val pp_plan : Format.formatter -> plan -> unit

(** All return [None] when some operator fits no backend at all. *)

val exhaustive :
  profile:Profile.t -> est:Estimator.t ->
  backends:Engines.Backend.t list -> Ir.Dag.t -> plan option

(** This reproduction's extension: the same search with memoization of
    sub-partition results, turning the paper's exponential blow-up into
    something tractable on chain-shaped DAGs (an ablation reported next
    to Figure 13). *)
val exhaustive_memoized :
  profile:Profile.t -> est:Estimator.t ->
  backends:Engines.Backend.t list -> Ir.Dag.t -> plan option

val dynamic :
  profile:Profile.t -> est:Estimator.t ->
  backends:Engines.Backend.t list -> Ir.Dag.t -> plan option

val dynamic_multi_order :
  ?orders:int -> profile:Profile.t -> est:Estimator.t ->
  backends:Engines.Backend.t list -> Ir.Dag.t -> plan option

(** One job per operator — the merging-disabled ablation of Figure 12. *)
val no_merging :
  profile:Profile.t -> est:Estimator.t ->
  backends:Engines.Backend.t list -> Ir.Dag.t -> plan option

(** [partition] dispatches to the exhaustive optimum (via
    {!exhaustive_memoized}, which returns the same plans as the paper's
    plain enumeration) for DAGs of at most [threshold] operators
    (default 13, after Figure 13) and to {!dynamic} beyond. *)
val partition :
  ?threshold:int -> profile:Profile.t -> est:Estimator.t ->
  backends:Engines.Backend.t list -> Ir.Dag.t -> plan option
