(** Extraction of per-job sub-graphs from a workflow DAG.

    When the partitioner (§5.1) cuts a workflow into jobs, each cut edge
    becomes an HDFS materialization point: the producing job writes the
    relation, the consuming job re-reads it through a fresh INPUT node.
    This is how Musketeer combines execution engines within one
    workflow (§6.3). *)

(** [extract g ids] builds a self-contained job graph from the node set
    [ids] of [g] (ids must be operator nodes of [g]; INPUT nodes of [g]
    are absorbed automatically when referenced). External inputs become
    INPUT nodes named after the producer's output relation; the job's
    outputs are the nodes whose relations are consumed outside the set
    or are workflow outputs.

    Raises [Invalid_argument] if [ids] is empty or not convex. *)
val extract : Ir.Dag.t -> int list -> Ir.Operator.graph

(** Like {!extract}, also returning the (job node id, workflow node id)
    correspondence, used to key execution history by workflow node. *)
val extract_mapped :
  Ir.Dag.t -> int list -> Ir.Operator.graph * (int * int) list

(** [job_order g partition] sorts the node-set partition into a valid
    sequential execution order (producers before consumers).
    Raises [Invalid_argument] when the job graph has a cycle, i.e. the
    partition is not convex. *)
val job_order : Ir.Dag.t -> int list list -> int list list
