let decide ~(cluster : Engines.Cluster.t) ~input_mb (g : Ir.Dag.t) =
  if Idiom.detect_graph_workload g <> None then
    if input_mb < 2048. then
      (Engines.Backend.Graph_chi, "graph idiom, small graph -> GraphChi")
    else if cluster.nodes <= 16 then
      (Engines.Backend.Power_graph,
       "graph idiom, moderate cluster -> PowerGraph")
    else (Engines.Backend.Naiad, "graph idiom, large cluster -> Naiad")
  else if Engines.Exec_helper.has_while g then
    (Engines.Backend.Spark, "iterative non-graph workflow -> Spark")
  else if input_mb < 96. then
    (Engines.Backend.Serial_c, "tiny input -> serial C")
  else if input_mb < 1024. then
    (Engines.Backend.Metis, "small input -> Metis")
  else (Engines.Backend.Hadoop, "large batch input -> Hadoop")

let decision_tree ~cluster ~input_mb g = fst (decide ~cluster ~input_mb g)

let explain_decision ~cluster ~input_mb g = snd (decide ~cluster ~input_mb g)
