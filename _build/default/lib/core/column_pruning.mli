(** Dead-column elimination: the projection-push-down half of the
    paper's IR optimizations (§4.2 — reducing intermediate data volume
    where possible).

    A backwards liveness analysis computes, for every node, which of
    its output columns downstream operators actually read; when a
    workflow INPUT provides columns nobody uses, a PROJECT is inserted
    directly after it so every engine scans (and the cost model prices)
    only the live columns.

    Soundness notes encoded in the analysis: set operators (UNION,
    INTERSECT, DIFFERENCE) and DISTINCT compare whole rows, so their
    inputs keep every column; JOIN's rename-on-clash ([r_] prefix) is
    inverted when propagating requirements into the right side; WHILE
    bodies, UDFs and black boxes are opaque (all columns live). *)

(** [required_columns ~catalog g] — live output columns per node id.
    Raises {!Ir.Typing.Type_error} when the graph cannot be typed. *)
val required_columns :
  catalog:(string -> Relation.Schema.t) -> Ir.Dag.t ->
  (int, string list) Hashtbl.t

(** The rewrite, in the optimizer's single-step interface: returns the
    graph with one pruning PROJECT inserted, or [None] when every input
    is already fully live. *)
val prune_inputs :
  catalog:(string -> Relation.Schema.t) -> Ir.Dag.t -> Ir.Dag.t option
