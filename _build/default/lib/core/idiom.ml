type graph_idiom = {
  while_id : int;
  join_id : int;
  group_by_id : int;
  apply_ids : int list;
}

(* is [dst] reachable from [src] within graph [g]? *)
let reachable (g : Ir.Dag.t) ~src ~dst =
  let visited = Hashtbl.create 8 in
  let rec visit id =
    id = dst
    || (not (Hashtbl.mem visited id))
       && begin
         Hashtbl.add visited id ();
         List.exists visit (Ir.Dag.consumers g id)
       end
  in
  visit src

(* the scatter JOIN must cleanly separate vertex state from the edge
   relation (Ir.Gas_check), and feed — possibly through apply
   operators — the gather GROUP BY *)
let detect_in_body (body : Ir.Operator.graph) =
  if not (Ir.Gas_check.body_is_vertex_centric body) then None
  else
    match Ir.Gas_check.scatter_join body with
    | None -> None
    | Some join_id ->
      List.find_map
        (fun (n : Ir.Operator.node) ->
           match n.kind with
           | Ir.Operator.Group_by _
             when reachable body ~src:join_id ~dst:n.id ->
             Some (join_id, n.id)
           | _ -> None)
        body.nodes

let detect_graph_workload (g : Ir.Dag.t) =
  List.find_map
    (fun (n : Ir.Operator.node) ->
       match n.kind with
       | Ir.Operator.While { body; _ } -> (
         match detect_in_body body with
         | Some (join_id, group_by_id) ->
           let apply_ids =
             List.filter_map
               (fun (b : Ir.Operator.node) ->
                  match b.kind with
                  | Ir.Operator.Input _ -> None
                  | _ when b.id = join_id || b.id = group_by_id -> None
                  | _ -> Some b.id)
               body.nodes
           in
           Some { while_id = n.id; join_id; group_by_id; apply_ids }
         | None -> None)
       | _ -> None)
    g.Ir.Operator.nodes

(* ancestors of [id] that are INPUT nodes *)
let input_ancestors (g : Ir.Dag.t) id =
  let acc = ref [] in
  let visited = Hashtbl.create 8 in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      let n = Ir.Dag.node g id in
      (match n.Ir.Operator.kind with
       | Ir.Operator.Input _ ->
         if not (List.mem id !acc) then acc := id :: !acc
       | _ -> ());
      List.iter visit n.Ir.Operator.inputs
    end
  in
  visit id;
  !acc

let repeated_self_join (g : Ir.Dag.t) =
  let self_joined_inputs =
    List.filter_map
      (fun (n : Ir.Operator.node) ->
         match n.kind, n.inputs with
         | Ir.Operator.Join _, [ l; r ] -> (
           match input_ancestors g l, input_ancestors g r with
           | [ a ], [ b ] when a = b -> Some a
           | _ -> None)
         | _ -> None)
      g.Ir.Operator.nodes
  in
  match self_joined_inputs with
  | a :: rest when List.exists (fun b -> b = a) rest -> Some a
  | _ -> None

let associative_aggregations (g : Ir.Dag.t) =
  List.filter_map
    (fun (n : Ir.Operator.node) ->
       match n.kind with
       | (Ir.Operator.Group_by _ | Ir.Operator.Agg _) as kind
         when Ir.Operator.associative_aggregation kind ->
         Some n.id
       | _ -> None)
    g.Ir.Operator.nodes

let rec all_aggregations_associative (g : Ir.Dag.t) =
  List.for_all
    (fun (n : Ir.Operator.node) ->
       match n.kind with
       | Ir.Operator.While { body; _ } -> all_aggregations_associative body
       | kind -> Ir.Operator.associative_aggregation kind)
    g.Ir.Operator.nodes
