open Relation

module String_set = Set.Make (String)

let set_of_list = String_set.of_list

(* the name a right-side join/cross column gets in the output *)
let right_out_name ls c = if Schema.mem ls c then "r_" ^ c else c

let required_of_schemas ~schemas (g : Ir.Dag.t) =
  let req : (int, String_set.t) Hashtbl.t = Hashtbl.create 16 in
  let get id =
    Option.value (Hashtbl.find_opt req id) ~default:String_set.empty
  in
  let add id cols = Hashtbl.replace req id (String_set.union (get id) cols) in
  let all_of id = set_of_list (Schema.column_names (Hashtbl.find schemas id)) in
  (* workflow outputs are fully live *)
  List.iter (fun id -> add id (all_of id)) g.Ir.Operator.outputs;
  List.iter
    (fun (n : Ir.Operator.node) ->
       let live = get n.id in
       match n.kind, n.inputs with
       | Ir.Operator.Input _, _ -> ()
       | Ir.Operator.Select { pred }, [ i ] ->
         add i (String_set.union live (set_of_list (Expr.columns pred)))
       | Ir.Operator.Project { columns }, [ i ] ->
         (* the projection's declaration is fixed: it reads its columns *)
         add i (set_of_list columns)
       | Ir.Operator.Map { target; expr }, [ i ] ->
         add i
           (String_set.union
              (String_set.remove target live)
              (set_of_list (Expr.columns expr)))
       | Ir.Operator.Join { left_key; right_key }, [ l; r ] ->
         let ls = Hashtbl.find schemas l and rs = Hashtbl.find schemas r in
         add l
           (String_set.add left_key
              (String_set.inter live
                 (set_of_list (Schema.column_names ls))));
         let right_live =
           List.filter
             (fun c ->
                c <> right_key
                && String_set.mem (right_out_name ls c) live)
             (Schema.column_names rs)
         in
         add r (String_set.add right_key (set_of_list right_live))
       | Ir.Operator.Left_outer_join { left_key; right_key; _ }, [ l; r ] ->
         let ls = Hashtbl.find schemas l in
         add l
           (String_set.add left_key
              (String_set.inter live
                 (set_of_list (Schema.column_names ls))));
         (* defaults are positional over the right's non-key columns, so
            the right side stays fully live *)
         ignore right_key;
         add r (all_of r)
       | (Ir.Operator.Semi_join { left_key; right_key }
         | Ir.Operator.Anti_join { left_key; right_key }), [ l; r ] ->
         add l (String_set.add left_key live);
         (* only the key matters on the right *)
         add r (String_set.singleton right_key)
       | Ir.Operator.Cross, [ l; r ] ->
         let ls = Hashtbl.find schemas l and rs = Hashtbl.find schemas r in
         add l
           (String_set.inter live (set_of_list (Schema.column_names ls)));
         let right_live =
           List.filter
             (fun c -> String_set.mem (right_out_name ls c) live)
             (Schema.column_names rs)
         in
         add r (set_of_list right_live)
       | (Ir.Operator.Union | Ir.Operator.Intersect
         | Ir.Operator.Difference), [ l; r ] ->
         (* row-identity operators: every column participates *)
         add l (all_of l);
         add r (all_of r)
       | Ir.Operator.Distinct, [ i ] -> add i (all_of i)
       | Ir.Operator.Group_by { keys; aggs }, [ i ] ->
         let agg_cols =
           List.filter_map
             (fun (a : Aggregate.t) -> Aggregate.input_column a.fn)
             aggs
         in
         add i (set_of_list (keys @ agg_cols))
       | Ir.Operator.Agg { aggs }, [ i ] ->
         add i
           (set_of_list
              (List.filter_map
                 (fun (a : Aggregate.t) -> Aggregate.input_column a.fn)
                 aggs))
       | (Ir.Operator.Sort { by; _ } | Ir.Operator.Top_k { by; _ }), [ i ] ->
         add i (String_set.add by live)
       | (Ir.Operator.Udf _ | Ir.Operator.While _ | Ir.Operator.Black_box _),
         inputs ->
         (* opaque: everything they are fed stays live *)
         List.iter (fun i -> add i (all_of i)) inputs
       | _, _ -> List.iter (fun i -> add i (all_of i)) n.inputs)
    (List.rev (Ir.Dag.topological_order g));
  let result = Hashtbl.create 16 in
  Hashtbl.iter
    (fun id cols -> Hashtbl.replace result id (String_set.elements cols))
    req;
  result

let required_columns ~catalog g =
  required_of_schemas ~schemas:(Ir.Typing.infer ~catalog g) g

let prune_inputs ~catalog (g : Ir.Dag.t) =
  let schemas = Ir.Typing.infer ~catalog g in
  let required = required_of_schemas ~schemas g in
  let is_project id =
    match (Ir.Dag.node g id).Ir.Operator.kind with
    | Ir.Operator.Project _ -> true
    | _ -> false
  in
  let candidate =
    List.find_opt
      (fun (n : Ir.Operator.node) ->
         match n.kind with
         | Ir.Operator.Input _ ->
           let live =
             Option.value (Hashtbl.find_opt required n.id) ~default:[]
           in
           let schema_cols =
             Schema.column_names (Hashtbl.find schemas n.id)
           in
           live <> []
           && List.length live < List.length schema_cols
           && (not (List.mem n.id g.Ir.Operator.outputs))
           (* consumers that already project gain nothing (and guard the
              rewrite fixpoint) *)
           && not (List.for_all is_project (Ir.Dag.consumers g n.id))
         | _ -> false)
      g.Ir.Operator.nodes
  in
  match candidate with
  | None -> None
  | Some target ->
    let live = Hashtbl.find required target.id in
    let schema_cols = Schema.column_names (Hashtbl.find schemas target.id) in
    let keep = List.filter (fun c -> List.mem c live) schema_cols in
    let b = Ir.Builder.create () in
    let handles : (int, Ir.Builder.handle) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (n : Ir.Operator.node) ->
         let handle =
           if n.id = target.id then begin
             let relation =
               match n.kind with
               | Ir.Operator.Input { relation } -> relation
               | _ -> assert false
             in
             let inp = Ir.Builder.input b relation in
             Ir.Builder.project b ~columns:keep inp
           end
           else
             Rebuild.copy_node b ~name:n.output n.kind
               (List.map (Hashtbl.find handles) n.inputs)
         in
         Hashtbl.replace handles n.id handle)
      (Ir.Dag.topological_order g);
    Some
      (Ir.Builder.finish b
         ~outputs:(List.map (Hashtbl.find handles) g.Ir.Operator.outputs))
