let copy_node b ~name kind inputs =
  match kind, inputs with
  | Ir.Operator.Input { relation }, [] -> Ir.Builder.input b relation
  | Ir.Operator.Select { pred }, [ h ] -> Ir.Builder.select b ~name ~pred h
  | Ir.Operator.Project { columns }, [ h ] ->
    Ir.Builder.project b ~name ~columns h
  | Ir.Operator.Map { target; expr }, [ h ] ->
    Ir.Builder.map b ~name ~target ~expr h
  | Ir.Operator.Join { left_key; right_key }, [ l; r ] ->
    Ir.Builder.join b ~name ~left_key ~right_key l r
  | Ir.Operator.Left_outer_join { left_key; right_key; defaults }, [ l; r ] ->
    Ir.Builder.left_outer_join b ~name ~left_key ~right_key ~defaults l r
  | Ir.Operator.Semi_join { left_key; right_key }, [ l; r ] ->
    Ir.Builder.semi_join b ~name ~left_key ~right_key l r
  | Ir.Operator.Anti_join { left_key; right_key }, [ l; r ] ->
    Ir.Builder.anti_join b ~name ~left_key ~right_key l r
  | Ir.Operator.Cross, [ l; r ] -> Ir.Builder.cross b ~name l r
  | Ir.Operator.Union, [ l; r ] -> Ir.Builder.union b ~name l r
  | Ir.Operator.Intersect, [ l; r ] -> Ir.Builder.intersect b ~name l r
  | Ir.Operator.Difference, [ l; r ] -> Ir.Builder.difference b ~name l r
  | Ir.Operator.Distinct, [ h ] -> Ir.Builder.distinct b ~name h
  | Ir.Operator.Group_by { keys; aggs }, [ h ] ->
    Ir.Builder.group_by b ~name ~keys ~aggs h
  | Ir.Operator.Agg { aggs }, [ h ] -> Ir.Builder.agg b ~name ~aggs h
  | Ir.Operator.Sort { by; descending }, [ h ] ->
    Ir.Builder.sort b ~name ~by ~descending h
  | Ir.Operator.Top_k { by; descending; k }, [ h ] ->
    Ir.Builder.top_k b ~name ~by ~descending ~k h
  | Ir.Operator.Udf u, hs -> Ir.Builder.udf b ~name u hs
  | Ir.Operator.While { condition; max_iterations; body }, hs ->
    Ir.Builder.while_ b ~name ~condition ~max_iterations ~body hs
  | Ir.Operator.Black_box { backend_hint; description }, hs ->
    Ir.Builder.black_box b ~name ~backend_hint ~description hs
  | kind, inputs ->
    invalid_arg
      (Printf.sprintf "Rebuild.copy_node: %s with %d inputs"
         (Ir.Operator.kind_name kind)
         (List.length inputs))
