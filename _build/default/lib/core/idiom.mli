(** Idiom recognition (paper §4.3.1).

    Musketeer detects vertex-centric graph computations in the IR DAG —
    even when the workflow was written in a relational front-end — so it
    can target GAS-only back-ends and pick specialized operator
    implementations. The idiom is the reverse of GraphX's encoding of
    graph computation as data-flow operators: a WHILE whose body JOINs a
    vertex-state relation with an edge relation and then GROUPs the
    result by the destination-vertex column.

    The technique is sound but not complete (§8): e.g. a triangle-count
    workflow that joins the edge relation with itself twice and filters,
    with no WHILE, is a graph workload Musketeer fails to classify. *)

type graph_idiom = {
  while_id : int;      (** the WHILE node in the workflow graph *)
  join_id : int;       (** the scatter JOIN inside the body *)
  group_by_id : int;   (** the gather GROUP BY downstream of the join *)
  apply_ids : int list;
      (** remaining body operators — the apply step *)
}

(** Classify a workflow graph. Returns the first WHILE exhibiting the
    idiom. *)
val detect_graph_workload : Ir.Dag.t -> graph_idiom option

(** The §8 "reverse loop unrolling" heuristic, partially addressing the
    triangle-counting miss: detects batch workflows that repeatedly
    self-join one relation (several JOINs whose both sides derive from
    the same workflow input), which often indicates a graph computation
    a specialized engine could run. Returns the shared input's node id.
    Detection only — no rewrite is attempted (future work in the paper
    too). *)
val repeated_self_join : Ir.Dag.t -> int option

(** GROUP BY / AGG nodes (top level) whose aggregations are all
    associative — candidates for Naiad's vertex-level GROUP BY
    implementation (§6.2) and MapReduce combiners. *)
val associative_aggregations : Ir.Dag.t -> int list

(** True when every aggregation in the graph (recursively, including
    WHILE bodies) is associative; drives the
    [naiad_vertex_group_by] code-generation option. *)
val all_aggregations_associative : Ir.Dag.t -> bool
