(** One-off operator-performance calibration (paper §5.2, Table 1).

    For a deployed cluster, Musketeer measures each back-end once with
    small probe jobs and records the rates at which it ingests (PULL),
    loads/transforms (LOAD), processes (PROCESS) and writes (PUSH) data,
    plus its per-job overhead. The cost function prices candidate jobs
    with these rates and the data-volume estimates — it never peeks at
    the engine simulators' internal parameters.

    Probes: a no-op scan (PULL/PROCESS/PUSH/LOAD), an equi-join (shuffle
    bandwidth) and, for engines that iterate natively, a 1- vs 4-
    iteration GAS job (per-iteration overhead). *)

type t

(** Probe every backend on [cluster]. [probe_mb] is the modeled size of
    the probe input (default 1024 MB — calibration is one-off and
    size-dependent effects like Metis falling out of memory are exactly
    what the crude cost function misses, cf. Figure 14's first-run
    mispredictions). *)
val calibrate : ?probe_mb:float -> cluster:Engines.Cluster.t -> unit -> t

val cluster : t -> Engines.Cluster.t

(** Calibrated rates for a backend. *)
val rates : t -> Engines.Backend.t -> Engines.Perf.rates

(** Render the Table-1-style rate matrix. *)
val pp : Format.formatter -> t -> unit
