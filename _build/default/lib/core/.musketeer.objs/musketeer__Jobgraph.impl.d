lib/core/jobgraph.ml: Array Hashtbl Ir List Rebuild
