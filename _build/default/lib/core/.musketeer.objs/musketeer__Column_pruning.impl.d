lib/core/column_pruning.ml: Aggregate Expr Hashtbl Ir List Option Rebuild Relation Schema Set String
