lib/core/profile.mli: Engines Format
