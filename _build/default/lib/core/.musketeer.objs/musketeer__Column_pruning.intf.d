lib/core/column_pruning.mli: Hashtbl Ir Relation
