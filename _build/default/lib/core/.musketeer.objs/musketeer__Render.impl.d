lib/core/render.ml: Aggregate Buffer Engines Expr Ir List Printf Relation String
