lib/core/musketeer.ml: Codegen Column_pruning Cost Engines Estimator Executor Explain History Idiom Jobgraph List Mapper Optimizer Option Partitioner Printf Profile Relation Render Support
