lib/core/explain.mli: Cost Engines Format History Ir Partitioner Profile
