lib/core/executor.ml: Codegen Engines Estimator History Ir Jobgraph List Logs Partitioner Printf Profile Relation Support
