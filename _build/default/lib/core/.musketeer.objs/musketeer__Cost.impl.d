lib/core/cost.ml: Engines Estimator Hashtbl History Ir List Printf Profile Support
