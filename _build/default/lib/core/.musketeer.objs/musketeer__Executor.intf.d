lib/core/executor.mli: Engines History Ir Partitioner Profile Relation Stdlib
