lib/core/estimator.mli: History Ir
