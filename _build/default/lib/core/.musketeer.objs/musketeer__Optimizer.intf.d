lib/core/optimizer.mli: Ir Relation
