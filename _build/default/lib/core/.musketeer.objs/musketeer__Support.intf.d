lib/core/support.mli: Engines Ir
