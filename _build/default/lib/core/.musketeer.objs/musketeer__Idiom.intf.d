lib/core/idiom.mli: Ir
