lib/core/jobgraph.mli: Ir
