lib/core/history.mli:
