lib/core/rebuild.ml: Ir List Printf
