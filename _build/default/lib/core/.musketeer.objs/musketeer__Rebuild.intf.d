lib/core/rebuild.mli: Ir
