lib/core/mapper.ml: Engines Idiom Ir
