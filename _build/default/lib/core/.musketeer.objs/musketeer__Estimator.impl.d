lib/core/estimator.ml: Hashtbl History Ir List
