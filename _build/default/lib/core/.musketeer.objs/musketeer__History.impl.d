lib/core/history.ml: Buffer Hashtbl In_channel List Out_channel Printf String
