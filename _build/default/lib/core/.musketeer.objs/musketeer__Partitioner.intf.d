lib/core/partitioner.mli: Engines Estimator Format Ir Profile
