lib/core/codegen.ml: Engines Ir List Render
