lib/core/explain.ml: Buffer Cost Engines Estimator Format Hashtbl Ir List Optimizer Partitioner Printf Relation String
