lib/core/idiom.ml: Hashtbl Ir List
