lib/core/render.mli: Engines Ir
