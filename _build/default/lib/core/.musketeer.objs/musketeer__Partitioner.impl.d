lib/core/partitioner.ml: Array Cost Engines Format Fun Hashtbl Ir Jobgraph List Option String
