lib/core/musketeer.mli: Codegen Column_pruning Cost Engines Estimator Executor Explain History Idiom Ir Jobgraph Mapper Optimizer Partitioner Profile Relation Render Support
