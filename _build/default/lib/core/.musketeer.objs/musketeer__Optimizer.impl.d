lib/core/optimizer.ml: Column_pruning Expr Hashtbl Ir List Logs Option Rebuild Relation Schema
