lib/core/mapper.mli: Engines Ir
