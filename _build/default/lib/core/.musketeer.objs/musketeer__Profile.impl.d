lib/core/profile.ml: Aggregate Array Engines Expr Float Format Ir List Option Printf Random Relation Schema Table Value
