lib/core/codegen.mli: Engines Ir
