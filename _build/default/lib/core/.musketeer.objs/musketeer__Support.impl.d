lib/core/support.ml: Engines Ir List Printf String
