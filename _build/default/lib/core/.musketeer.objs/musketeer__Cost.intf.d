lib/core/cost.mli: Engines Estimator Ir Profile
