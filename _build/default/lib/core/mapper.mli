(** Automatic back-end mapping (paper §5.2, §6.7).

    Musketeer's automatic choice is the cost-based partitioner run over
    all back-ends ({!Partitioner.partition}); this module adds the
    decision-tree baseline Figure 14 compares against. The tree encodes
    fixed expert rules ("small data → single machine", "graph idiom →
    specialized engine", …); its inflexible thresholds and blindness to
    operator merging and shared scans yield many poor choices, which is
    the paper's point. *)

(** Decision-tree choice for the whole workflow, from workflow shape
    and input size alone. *)
val decision_tree :
  cluster:Engines.Cluster.t -> input_mb:float -> Ir.Dag.t ->
  Engines.Backend.t

(** Render the decision path taken (diagnostics / docs). *)
val explain_decision :
  cluster:Engines.Cluster.t -> input_mb:float -> Ir.Dag.t -> string
