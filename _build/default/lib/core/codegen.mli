(** Code generation for back-end jobs (paper §4.3).

    Besides rendering template code ({!Render}), the generator computes
    how many passes over the input data the emitted code makes — the
    property the paper's optimizations attack:

    - naive per-operator templates scan once per map-side operator and
      add a keying pass plus a flattening pass around every JOIN and a
      keying pass before every GROUP BY (Listing 3);
    - {b shared scans} (§4.3.3) fuse adjacent map-side operators into a
      single pass;
    - {b look-ahead type inference} (§4.3.4) emits each operator's
      output directly in the format its consumer needs, eliminating the
      keying/flattening passes. Musketeer's simple inference keeps one
      residual pass on Spark jobs with two or more JOINs, reproducing
      the residual overhead of §6.4.

    Pass counts feed {!Engines.Job.options.scan_passes}, turning code
    quality into simulated time. *)

type generated = {
  job : Engines.Job.t;
  source : string;
  naive_passes : int;      (** passes without any optimization *)
  passes : int;            (** passes of the emitted code *)
}

(** [generate ~label ~backend g] with both optimizations on (Musketeer's
    production path). [share_scans] / [infer_types] switch them off for
    the ablations of Figures 10 and 12. *)
val generate :
  ?share_scans:bool -> ?infer_types:bool -> label:string ->
  backend:Engines.Backend.t -> Ir.Operator.graph -> generated

(** The hand-optimized, non-portable baseline of §6.4: oracle pass
    count, no generated-code inefficiency. *)
val baseline_job :
  label:string -> backend:Engines.Backend.t -> Ir.Operator.graph ->
  Engines.Job.t

(** Stock front-end code (e.g. Lindi's native Naiad path): no shared
    scans, single-reader I/O, collect-based GROUP BY. *)
val native_frontend_job :
  label:string -> backend:Engines.Backend.t -> Ir.Operator.graph ->
  Engines.Job.t
