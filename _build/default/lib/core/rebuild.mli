(** Re-emitting IR nodes through a {!Ir.Builder} — shared by job-graph
    extraction and the optimizer's graph rewrites. *)

(** [copy_node b ~name kind inputs] mirrors an existing operator node
    into the builder. Raises [Invalid_argument] on arity mismatch. *)
val copy_node :
  Ir.Builder.t -> name:string -> Ir.Operator.kind ->
  Ir.Builder.handle list -> Ir.Builder.handle
