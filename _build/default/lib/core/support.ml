type while_policy =
  | Native_iteration
  | Expand_per_iteration
  | No_while

let while_support = function
  | Engines.Backend.Spark | Engines.Backend.Naiad | Engines.Backend.Serial_c
  | Engines.Backend.Power_graph | Engines.Backend.Graph_chi
  | Engines.Backend.Giraph | Engines.Backend.X_stream ->
    Native_iteration
  | Engines.Backend.Hadoop | Engines.Backend.Metis -> Expand_per_iteration

let kind_of g id = (Ir.Dag.node g id).Ir.Operator.kind

let is_while = function
  | Ir.Operator.While _ -> true
  | _ -> false

let black_box_ok backend kinds =
  let bad =
    List.find_map
      (fun kind ->
         match kind with
         | Ir.Operator.Black_box { backend_hint; _ }
           when not
                  (String.lowercase_ascii backend_hint
                   = String.lowercase_ascii (Engines.Backend.name backend)) ->
           Some backend_hint
         | _ -> None)
      kinds
  in
  match bad with
  | Some hint ->
    Error
      (Printf.sprintf "black-box operator requires %s, not %s" hint
         (Engines.Backend.name backend))
  | None -> Ok ()

let rec check backend g ids =
  let kinds = List.map (kind_of g) ids in
  match black_box_ok backend kinds with
  | Error _ as e -> e
  | Ok () ->
    if Engines.Backend.gas_only backend then
      match kinds with
      | [ Ir.Operator.While { body; _ } ]
        when Ir.Gas_check.body_is_vertex_centric body ->
        Ok ()
      | _ ->
        Error
          (Printf.sprintf "%s only runs vertex-centric (GAS) graph jobs"
             (Engines.Backend.name backend))
    else
      let whiles = List.filter is_while kinds in
      match while_support backend, whiles with
      | Native_iteration, _ | No_while, [] -> ok_shuffles backend kinds
      | Expand_per_iteration, [] -> ok_shuffles backend kinds
      | Expand_per_iteration, [ Ir.Operator.While _ ]
        when List.length kinds = 1 ->
        (* the executor turns this into per-iteration job chains *)
        Ok ()
      | Expand_per_iteration, _ ->
        Error
          (Printf.sprintf
             "%s can only run a WHILE as a standalone job chain"
             (Engines.Backend.name backend))
      | No_while, _ :: _ ->
        Error
          (Printf.sprintf "%s cannot iterate" (Engines.Backend.name backend))

and ok_shuffles backend kinds =
  if Engines.Backend.general_purpose backend then Ok ()
  else
    let shuffles =
      List.length (List.filter Ir.Operator.needs_shuffle kinds)
    in
    if shuffles > 1 then
      Error
        (Printf.sprintf
           "%s supports one group-by-key operation per job; set has %d"
           (Engines.Backend.name backend) shuffles)
    else Ok ()

let check_bool backend g ids =
  match check backend g ids with
  | Ok () -> true
  | Error _ -> false
