(** Back-end code templates (paper §4.3).

    Musketeer instantiates and concatenates per-operator templates to
    produce executable jobs. In this reproduction the engines are
    simulators, so the rendered program is the human-readable artifact:
    the CLI's [--show-code] prints it, and tests assert that the
    templates reflect the optimizations (e.g. the optimized Spark code
    for max-property-price contains two [map]s where the naive code has
    four — Listings 3 and 4). *)

(** [render backend graph ~shared_scans] produces source text in the
    back-end's native style (Scala for Spark, Java-like MapReduce for
    Hadoop/Metis, C#-like timely dataflow for Naiad, a GAS vertex
    program for PowerGraph/GraphChi, C for the serial backend).
    [shared_scans] selects the optimized templates that fuse adjacent
    scans (§4.3.3–4.3.4). *)
val render :
  Engines.Backend.t -> shared_scans:bool -> Ir.Operator.graph -> string
