(* Combining execution engines within one workflow (paper §6.3,
   Figure 9): cross-community PageRank intersects the edge sets of two
   web communities (a batch phase suited to a general-purpose engine)
   and runs PageRank on the common sub-graph (an iterative phase suited
   to a specialized one). Musketeer explores the combinations.

   Run with: dune exec examples/cross_community.exe *)

let () =
  let m = Musketeer.create ~cluster:Engines.Cluster.local_seven () in
  let graph = Workloads.Workflows.cross_community_pagerank () in
  let hdfs () =
    let a, b = Workloads.Datagen.community_pair () in
    let h = Engines.Hdfs.create () in
    Workloads.Datagen.put h "edges_a" a;
    Workloads.Datagen.put h "edges_b" b;
    h
  in

  (* single-system executions *)
  List.iter
    (fun backend ->
       match
         Experiments.Common.run_forced m ~workflow:"cc" ~hdfs:(hdfs ())
           ~backend graph
       with
       | Ok s ->
         Format.printf "%-22s %6.1fs@." (Engines.Backend.name backend) s
       | Error e -> Format.printf "%-22s %s@." (Engines.Backend.name backend) e)
    [ Engines.Backend.Hadoop; Engines.Backend.Spark; Engines.Backend.Naiad ];

  (* mixed mapping: restrict the planner to Hadoop + PowerGraph and it
     places the batch phase on Hadoop, the loop on PowerGraph *)
  (match
     Musketeer.plan m
       ~backends:[ Engines.Backend.Hadoop; Engines.Backend.Power_graph ]
       ~workflow:"cc" ~hdfs:(hdfs ()) graph
   with
   | Some (plan, graph') ->
     Format.printf "@.Hadoop + PowerGraph combination:@.%a"
       Musketeer.Partitioner.pp_plan plan;
     (match
        Musketeer.execute_plan m ~workflow:"cc" ~hdfs:(hdfs ())
          ~graph:graph' plan
      with
      | Ok result ->
        Format.printf "combined makespan: %.1fs@."
          result.Musketeer.Executor.makespan_s
      | Error e -> prerr_endline (Engines.Report.error_to_string e))
   | None -> prerr_endline "no combined plan");

  (* fully automatic choice over all seven engines *)
  match Musketeer.execute m ~workflow:"cc" ~hdfs:(hdfs ()) graph with
  | Ok (result, plan) ->
    Format.printf "@.automatic choice:@.%a" Musketeer.Partitioner.pp_plan plan;
    Format.printf "makespan: %.1fs@." result.Musketeer.Executor.makespan_s
  | Error e -> prerr_endline (Engines.Report.error_to_string e)
