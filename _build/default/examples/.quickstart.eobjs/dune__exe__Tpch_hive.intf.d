examples/tpch_hive.mli:
