examples/pagerank_gas.mli:
