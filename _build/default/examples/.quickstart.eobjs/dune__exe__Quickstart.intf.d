examples/quickstart.mli:
