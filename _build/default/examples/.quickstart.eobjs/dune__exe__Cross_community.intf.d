examples/cross_community.mli:
