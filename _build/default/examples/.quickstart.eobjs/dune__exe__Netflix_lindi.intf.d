examples/netflix_lindi.mli:
