examples/pagerank_gas.ml: Engines Format Frontends List Musketeer Relation Workloads
