examples/cross_community.ml: Engines Experiments Format List Musketeer Workloads
