examples/quickstart.ml: Engines Format Frontends Ir List Musketeer Relation Table Workloads
