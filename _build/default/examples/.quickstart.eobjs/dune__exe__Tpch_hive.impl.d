examples/tpch_hive.ml: Engines Experiments Format List Musketeer Relation Workloads
