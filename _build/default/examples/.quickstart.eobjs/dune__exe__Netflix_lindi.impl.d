examples/netflix_lindi.ml: Aggregate Engines Experiments Expr Format Frontends Ir List Musketeer Relation Table Workloads
