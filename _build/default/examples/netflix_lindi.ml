(* The Lindi (LINQ-style) combinator front-end on a data-intensive
   workflow: a simplified item-based NetFlix recommender built as an
   OCaml pipeline, compared in generated vs hand-optimized form
   (paper §6.4, Figure 10).

   Run with: dune exec examples/netflix_lindi.exe *)

open Relation

let query () =
  let open Frontends.Lindi in
  let ratings =
    read "ratings" |> where Expr.(col "rating" > int 0)
  in
  (* co-rated movie pairs per user *)
  let pairs = join ~on:("user", "user") ratings ratings in
  let weighted =
    map ~target:"product" Expr.(col "rating" * col "r_rating") pairs
  in
  let sims =
    group_by ~keys:[ "movie"; "r_movie" ]
      ~aggs:[ Aggregate.make (Aggregate.Sum "product") ~as_name:"sim" ]
      weighted
  in
  (* score candidate movies against each user's existing ratings *)
  let cand = join ~on:("movie", "movie") sims (read "ratings") in
  let scored = map ~target:"score" Expr.(col "sim" * col "rating") cand in
  let totals =
    group_by ~keys:[ "user"; "r_movie" ]
      ~aggs:[ Aggregate.make (Aggregate.Sum "score") ~as_name:"total" ]
      scored
  in
  top ~by:"total" 25 totals

let () =
  let graph = Frontends.Lindi.finish ~name:"recommendations" (query ()) in
  Format.printf "Lindi pipeline -> %d IR operators@."
    (Ir.Dag.operator_count graph);

  let m = Musketeer.create ~cluster:(Engines.Cluster.ec2 ~nodes:100) () in
  let hdfs () =
    let ratings, movies = Workloads.Datagen.netflix ~movies:8000 () in
    let h = Engines.Hdfs.create () in
    Workloads.Datagen.put h "ratings" ratings;
    Workloads.Datagen.put h "movies" movies;
    h
  in

  (* Musketeer-generated code vs a hand-optimized baseline, per engine *)
  List.iter
    (fun backend ->
       let generated =
         Experiments.Common.run_forced ~mode:Musketeer.Executor.Generated m
           ~workflow:"netflix" ~hdfs:(hdfs ()) ~backend graph
       and baseline =
         Experiments.Common.run_forced ~mode:Musketeer.Executor.Baseline m
           ~workflow:"netflix" ~hdfs:(hdfs ()) ~backend graph
       in
       match generated, baseline with
       | Ok g, Ok b ->
         Format.printf "%-8s generated %7.1fs  hand-tuned %7.1fs  (%+.1f%%)@."
           (Engines.Backend.name backend)
           g b
           (100. *. ((g -. b) /. b))
       | Error e, _ | _, Error e ->
         Format.printf "%-8s %s@." (Engines.Backend.name backend) e)
    [ Engines.Backend.Hadoop; Engines.Backend.Spark; Engines.Backend.Naiad ];

  (* run the auto-mapped plan and show a few recommendations *)
  match Musketeer.execute m ~workflow:"netflix" ~hdfs:(hdfs ()) graph with
  | Ok (result, plan) ->
    Format.printf "@.automatic mapping:@.%a" Musketeer.Partitioner.pp_plan plan;
    let out =
      List.assoc "recommendations" result.Musketeer.Executor.outputs
    in
    Format.printf "sample recommendations:@.%a" (Table.pp_sample ~n:5) out
  | Error e -> prerr_endline (Engines.Report.error_to_string e)
