(* Legacy-workflow speedup (paper §6.2, Figure 7): a TPC-H query 17
   workflow written for Hive keeps running on its native Hadoop
   back-end, but Musketeer can map the *same* HiveQL text to Naiad and
   roughly halve the makespan — no reimplementation required.

   Run with: dune exec examples/tpch_hive.exe *)

let () =
  let m = Musketeer.create ~cluster:(Engines.Cluster.ec2 ~nodes:16) () in
  Format.printf "HiveQL workflow:@.%s@." Workloads.Workflows.tpch_q17_hive;
  let graph = Workloads.Workflows.tpch_q17 () in

  let hdfs scale_factor =
    let lineitem, part = Workloads.Datagen.tpch ~scale_factor () in
    let h = Engines.Hdfs.create () in
    Workloads.Datagen.put h "lineitem" lineitem;
    Workloads.Datagen.put h "part" part;
    h
  in

  Format.printf "scale   Hive on Hadoop   Musketeer -> Naiad   speedup@.";
  List.iter
    (fun sf ->
       let h = hdfs sf in
       let hive =
         Experiments.Common.run_forced
           ~mode:Musketeer.Executor.Native_frontend m ~workflow:"q17" ~hdfs:h
           ~backend:Engines.Backend.Hadoop graph
       and naiad =
         Experiments.Common.run_forced m ~workflow:"q17" ~hdfs:h
           ~backend:Engines.Backend.Naiad graph
       in
       match hive, naiad with
       | Ok hv, Ok nd ->
         Format.printf "%5d   %13.1fs   %17.1fs   %6.1fx@." sf hv nd (hv /. nd)
       | _ -> Format.printf "%5d   (failed)@." sf)
    [ 10; 50; 100 ];

  (* the answer is the same either way *)
  let h = hdfs 10 in
  match Musketeer.execute m ~workflow:"q17" ~hdfs:h graph with
  | Ok (result, plan) ->
    Format.printf "@.auto-mapped plan: %a"
      Musketeer.Partitioner.pp_plan plan;
    let revenue = List.assoc "revenue" result.Musketeer.Executor.outputs in
    Format.printf "Q17 revenue:@.%a" (Relation.Table.pp_sample ~n:1) revenue
  | Error e ->
    prerr_endline (Engines.Report.error_to_string e)
