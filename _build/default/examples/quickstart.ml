(* Quickstart: write a workflow once in the BEER DSL, let Musketeer pick
   the execution engine, run it, and look at the generated code.

   Run with: dune exec examples/quickstart.exe *)

open Relation

let workflow_source =
  "spend = SELECT uid, SUM(amount) AS total FROM purchases \
   WHERE region = 'EU' GROUP BY uid;\n\
   big_spenders = SELECT uid, total FROM spend WHERE total > 1000;\n\
   OUTPUT big_spenders;\n"

let () =
  (* 1. a cluster and a calibrated Musketeer instance (the one-off
     profiling of paper §5.2 happens inside [create]) *)
  let cluster = Engines.Cluster.ec2 ~nodes:16 in
  let m = Musketeer.create ~cluster () in

  (* 2. input data in the shared simulated HDFS: a small executed sample
     carrying a paper-scale modeled size (here ~1.4 GB of purchases) *)
  let hdfs = Engines.Hdfs.create () in
  Workloads.Datagen.put hdfs "purchases"
    (Workloads.Datagen.purchases ~users:10_000_000 ());

  (* 3. front-end -> IR *)
  let graph = Frontends.Beer.parse workflow_source in
  Format.printf "IR after translation:@.%a@." Ir.Dag.pp graph;

  (* 4. plan: optimize the IR, estimate volumes, partition into jobs,
     pick back-ends by the calibrated cost model *)
  match Musketeer.plan m ~workflow:"quickstart" ~hdfs graph with
  | None -> prerr_endline "no feasible plan"
  | Some (plan, graph') ->
    Format.printf "chosen mapping:@.%a@." Musketeer.Partitioner.pp_plan plan;

    (* 5. peek at the generated back-end code (paper §4.3 templates) *)
    List.iter
      (fun (label, source) ->
         Format.printf "---- generated code, %s ----@.%s@." label source)
      (Musketeer.show_code ~graph:graph' plan);

    (* 6. execute: jobs run on the engine simulators against the real
       sample rows; makespans come from the calibrated performance
       models *)
    (match
       Musketeer.execute_plan m ~workflow:"quickstart" ~hdfs ~graph:graph'
         plan
     with
     | Error e ->
       prerr_endline ("execution failed: " ^ Engines.Report.error_to_string e)
     | Ok result ->
       List.iter
         (fun report -> Format.printf "%a@." Engines.Report.pp report)
         result.Musketeer.Executor.reports;
       let big = List.assoc "big_spenders" result.Musketeer.Executor.outputs in
       Format.printf "@.%d big spenders; first few:@.%a"
         (Table.row_count big)
         (Table.pp_sample ~n:5) big)
