(* Iterative graph processing with the Gather-Apply-Scatter DSL
   (paper Listing 2): the same PageRank program is mapped automatically
   to different engines as the cluster scale changes — GraphChi on one
   machine, PowerGraph or Naiad at 16 nodes, Naiad at 100 (Figure 8).

   Run with: dune exec examples/pagerank_gas.exe *)

let gas_program =
  "GATHER = {\n\
  \  SUM (vertex_value)\n\
   }\n\
   APPLY = {\n\
  \  MUL [vertex_value, 0.85]\n\
  \  SUM [vertex_value, 0.15]\n\
   }\n\
   SCATTER = {\n\
  \  DIV [vertex_value, vertex_degree]\n\
   }\n\
   ITERATION_STOP = (iteration < 5)\n\
   ITERATION = {\n\
  \  SUM [iteration, 1]\n\
   }\n"

let () =
  (* vertex-centric program -> relational dataflow IR (§4.3.1 idiom,
     applied in reverse) *)
  let graph =
    Frontends.Gas.parse_to_graph gas_program ~vertices:"vertices"
      ~edges:"edges"
  in

  (* the Twitter graph: 43M vertices / 1.4B edges at modeled scale *)
  let load () =
    let edges, vertices =
      Workloads.Datagen.graph_tables Workloads.Datagen.twitter ~edges:()
    in
    let hdfs = Engines.Hdfs.create () in
    Workloads.Datagen.put hdfs "edges" edges;
    Workloads.Datagen.put hdfs "vertices" vertices;
    hdfs
  in

  List.iter
    (fun nodes ->
       let m = Musketeer.create ~cluster:(Engines.Cluster.ec2 ~nodes) () in
       let hdfs = load () in
       match Musketeer.plan m ~workflow:"pagerank" ~hdfs graph with
       | None -> Format.printf "%3d nodes: no plan@." nodes
       | Some (plan, graph') -> (
         match
           Musketeer.execute_plan m ~workflow:"pagerank" ~hdfs ~graph:graph'
             plan
         with
         | Error e ->
           Format.printf "%3d nodes: %s@." nodes
             (Engines.Report.error_to_string e)
         | Ok result ->
           let backend =
             match plan.Musketeer.Partitioner.jobs with
             | (b, _) :: _ -> Engines.Backend.name b
             | [] -> "-"
           in
           Format.printf
             "%3d nodes: Musketeer chose %-10s  makespan %7.1fs@." nodes
             backend result.Musketeer.Executor.makespan_s))
    [ 1; 16; 100 ];

  (* the ranks themselves are identical regardless of the engine — show
     the top vertices from a single-machine run *)
  let m = Musketeer.create ~cluster:Engines.Cluster.single () in
  let hdfs = load () in
  match Musketeer.execute m ~workflow:"pagerank" ~hdfs graph with
  | Error _ -> ()
  | Ok (result, _) ->
    let ranks =
      List.assoc "vertices_final" result.Musketeer.Executor.outputs
    in
    let top =
      Relation.Kernel.top_k ranks ~by:"vertex_value" ~descending:true ~k:5
    in
    Format.printf "@.top-ranked vertices:@.%a"
      (Relation.Table.pp_sample ~n:5) top
