(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's per-experiment index). With no argument all
   experiments run in order; pass target names to run a subset;
   `bechamel` runs the Bechamel micro-benchmarks of the partitioning
   algorithms (the Figure 13 measurement).

   `--trace FILE` (anywhere on the command line) records a Chrome
   trace_event JSON trace of the selected experiments — one span per
   target wrapping the pipeline spans underneath. *)

let ppf = Format.std_formatter

let targets : (string * string * (unit -> unit)) list =
  [ ("fig2a", "PROJECT micro-benchmark (Fig 2a) + JOIN (Fig 2b)",
     fun () -> Experiments.Fig2_micro.run ppf);
    ("fig3", "PageRank motivation across systems (Fig 3)",
     fun () -> Experiments.Fig3_pagerank_motivation.run ppf);
    ("fig7", "TPC-H Q17 dynamic mapping (Fig 7)",
     fun () -> Experiments.Fig7_tpch.run ppf);
    ("fig8", "PageRank mapping + resource efficiency (Fig 8)",
     fun () -> Experiments.Fig8_pagerank_mapping.run ppf);
    ("fig9", "cross-community PageRank combinations (Fig 9)",
     fun () -> Experiments.Fig9_cross_community.run ppf);
    ("fig10", "NetFlix generated-code overhead (Fig 10)",
     fun () -> Experiments.Fig10_netflix_overhead.run ppf);
    ("fig11", "PageRank generated-code overhead (Fig 11)",
     fun () -> Experiments.Fig11_pagerank_overhead.run ppf);
    ("fig12", "operator merging and shared scans (Fig 12)",
     fun () -> Experiments.Fig12_merging.run ppf);
    ("fig13", "DAG partitioning runtime (Fig 13)",
     fun () -> Experiments.Fig13_partitioning.run ppf);
    ("fig14", "automated mapping quality (Fig 14)",
     fun () -> Experiments.Fig14_mapping_quality.run ppf);
    ("fig15", "SSSP and k-means automated mapping (Fig 15)",
     fun () -> Experiments.Fig15_new_workflows.run ppf);
    ("table1", "calibrated rate parameters (Table 1)",
     fun () -> Experiments.Tables.table1 ppf);
    ("table3", "system feature matrix (Table 3)",
     fun () -> Experiments.Tables.table3 ppf);
    ("sec7", "student JOIN baseline anecdote (Sec 7)",
     fun () -> Experiments.Tables.student_join ppf);
    ("ablations", "beyond-paper design-choice ablations",
     fun () -> Experiments.Ablations.run ppf);
    ("faults", "injected worker failure vs analytic recovery model",
     fun () -> Experiments.Fault_recovery.run ppf) ]

(* fig2b is part of the fig2a module; accept both names *)
let resolve name = if name = "fig2b" then "fig2a" else name

(* ---- Bechamel micro-benchmarks ----
   (1) exhaustive vs dynamic partitioning on NetFlix-prefix DAGs (real
       time, Fig 13's measurement);
   (2) the relational kernels every engine executes on. *)

let bechamel () =
  let open Bechamel in
  let m = Experiments.Common.musketeer_for (Experiments.Common.ec2 16) in
  let hdfs = Experiments.Common.load_netflix ~movies:17000 in
  let full = Workloads.Workflows.netflix_extended () in
  let prefix x = Experiments.Fig13_partitioning.prefix_graph full x in
  let profile = Musketeer.profile m in
  let backends = Engines.Backend.all in
  let partition_test algo_name algo x =
    let g = prefix x in
    let est = Musketeer.estimator m ~workflow:"bench" ~hdfs g in
    Test.make
      ~name:(Printf.sprintf "%s/%d-ops" algo_name x)
      (Staged.stage (fun () -> ignore (algo ~profile ~est ~backends g)))
  in
  let partition_tests =
    List.concat_map
      (fun x ->
         partition_test "dynamic" Musketeer.Partitioner.dynamic x
         ::
         (if x <= 10 then
            [ partition_test "exhaustive" Musketeer.Partitioner.exhaustive x ]
          else []))
      [ 4; 8; 10; 14; 18 ]
  in
  let kernel_tests =
    let open Relation in
    let schema =
      Schema.make [ { Schema.name = "k"; ty = Value.Tint };
                    { Schema.name = "v"; ty = Value.Tint } ]
    in
    let table n =
      Table.create_unchecked schema
        (Array.init n (fun i -> [| Value.Int (i mod 97); Value.Int i |]))
    in
    let t = table 10_000 and small = table 500 in
    [ Test.make ~name:"select/10k"
        (Staged.stage (fun () ->
             ignore (Kernel.select t Expr.(col "v" > int 5000))));
      Test.make ~name:"hash-join/10k x 500"
        (Staged.stage (fun () ->
             ignore (Kernel.join t small ~left_key:"k" ~right_key:"k")));
      Test.make ~name:"group-by/10k"
        (Staged.stage (fun () ->
             ignore
               (Kernel.group_by t ~keys:[ "k" ]
                  ~aggs:[ Aggregate.make (Aggregate.Sum "v") ~as_name:"s" ])));
      Test.make ~name:"distinct/10k"
        (Staged.stage (fun () -> ignore (Kernel.distinct t))) ]
  in
  let test =
    Test.make_grouped ~name:"musketeer"
      [ Test.make_grouped ~name:"partitioning" partition_tests;
        Test.make_grouped ~name:"kernels" kernel_tests ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
       let estimate =
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Printf.sprintf "%12.1f ns/run" est
         | _ -> "(no estimate)"
       in
       rows := (name, estimate) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-36s %s\n" name est)
    (List.sort compare !rows)

(* ---- columnar vs row kernel benchmark ----

   Times each hot kernel on NetFlix-scale synthetic tables three ways:
   the row engine with the columnar gate off at jobs=1 (the pre-columnar
   serial baseline), and the columnar path at jobs=1 and at the parallel
   jobs count. All three outputs must be byte-identical (CSV compare;
   fatal otherwise). Ratios are row-baseline / columnar — ≥ 1.0 means
   the vectorized path is no slower than the engine it replaced.
   Writes BENCH_kernels.json; with MUSKETEER_BENCH_GATE=1 (CI) the run
   fails if any ratio drops below 1.0. On a single-core machine jobs=4
   exercises the pool without beating jobs=1; the gate compares both
   against the row baseline, not against each other. *)

let kernels_par () =
  let open Relation in
  let par_jobs =
    let configured = Pool.configured_jobs () in
    if configured > 1 then configured else 4
  in
  let ratings_n = 400_000 and movies_n = 17_000 in
  let ratings =
    let schema =
      Schema.make
        [ { Schema.name = "user"; ty = Value.Tint };
          { Schema.name = "movie"; ty = Value.Tint };
          { Schema.name = "rating"; ty = Value.Tint } ]
    in
    Table.create_unchecked schema
      (Array.init ratings_n (fun i ->
           [| Value.Int (i * 7919 mod 480_189);
              Value.Int (i * 104_729 mod movies_n);
              Value.Int (1 + (i * 31 mod 5)) |]))
  in
  let movies =
    let schema =
      Schema.make
        [ { Schema.name = "movie"; ty = Value.Tint };
          { Schema.name = "year"; ty = Value.Tint } ]
    in
    Table.create_unchecked schema
      (Array.init movies_n (fun i ->
           [| Value.Int i; Value.Int (1950 + (i mod 60)) |]))
  in
  let kernels =
    [ ("select", fun () -> Kernel.select ratings Expr.(col "rating" >= int 4));
      ("project", fun () -> Kernel.project ratings [ "user"; "rating" ]);
      ("map", fun () ->
          Kernel.map_column ratings ~target:"centered"
            ~expr:Expr.(col "rating" - int 3));
      ("join", fun () ->
          Kernel.join ratings movies ~left_key:"movie" ~right_key:"movie");
      ("group_by", fun () ->
          Kernel.group_by ratings ~keys:[ "movie" ]
            ~aggs:
              [ Aggregate.make (Aggregate.Sum "rating") ~as_name:"total";
                Aggregate.make Aggregate.Count ~as_name:"n" ]);
      ("sort", fun () -> Table.sort_by ratings [ "movie"; "user" ]) ]
  in
  let reps = 5 in
  let best_of ~columnar jobs f =
    let best = ref infinity and out = ref None in
    for _ = 1 to reps do
      let result, s =
        Obs.Trace.time (fun () ->
            Column.with_enabled columnar (fun () -> Pool.with_jobs jobs f))
      in
      if s < !best then best := s;
      out := Some result
    done;
    (Option.get !out, !best)
  in
  let gate = Sys.getenv_opt "MUSKETEER_BENCH_GATE" = Some "1" in
  Printf.printf
    "columnar vs row kernels (%d rows, parallel jobs=%d, best of %d)\n"
    ratings_n par_jobs reps;
  Printf.printf "%-10s %12s %12s %12s %8s %8s  %s\n" "kernel" "row j1"
    "col j1" "col j4" "r(j1)" "r(j4)" "identical";
  (* a columnar timing under this is a zero-copy rewrite (PROJECT
     reduces to column aliasing): a ratio against a ~0s denominator is
     a measurement artifact, not a speedup, so such kernels report
     [zero_copy] with null ratios and the gate skips them *)
  let zero_copy_threshold_s = 1e-4 in
  let results =
    List.map
      (fun (name, f) ->
         let row_out, row_s = best_of ~columnar:false 1 f in
         let col_out, col_s = best_of ~columnar:true 1 f in
         let par_out, par_s = best_of ~columnar:true par_jobs f in
         let row_csv = Table.to_csv row_out in
         let identical =
           row_csv = Table.to_csv col_out && row_csv = Table.to_csv par_out
         in
         let zero_copy =
           col_s < zero_copy_threshold_s || par_s < zero_copy_threshold_s
         in
         let ratio1 = row_s /. col_s and ratio4 = row_s /. par_s in
         let fmt_ratio r =
           if zero_copy then "  0-copy" else Printf.sprintf "%7.2fx" r
         in
         Printf.printf "%-10s %10.1fms %10.1fms %10.1fms %s %s  %b\n%!"
           name (1000. *. row_s) (1000. *. col_s) (1000. *. par_s)
           (fmt_ratio ratio1) (fmt_ratio ratio4) identical;
         if not identical then begin
           Printf.eprintf "FATAL: %s columnar output differs from row engine\n"
             name;
           exit 1
         end;
         (name, row_s, col_s, par_s, ratio1, ratio4, zero_copy))
      kernels
  in
  let json =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    Buffer.add_string b (Printf.sprintf "  \"rows\": %d,\n" ratings_n);
    Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" par_jobs);
    Buffer.add_string b (Printf.sprintf "  \"reps\": %d,\n" reps);
    Buffer.add_string b "  \"kernels\": [\n";
    List.iteri
      (fun i (name, row_s, col_s, par_s, ratio1, ratio4, zero_copy) ->
         let json_ratio r =
           if zero_copy then "null" else Printf.sprintf "%.3f" r
         in
         Buffer.add_string b
           (Printf.sprintf
              "    {\"kernel\": %S, \"row_serial_s\": %.6f, \
               \"columnar_s\": %.6f, \"parallel_s\": %.6f, \
               \"zero_copy\": %b, \"ratio_jobs1\": %s, \"ratio_jobs4\": \
               %s}%s\n"
              name row_s col_s par_s zero_copy (json_ratio ratio1)
              (json_ratio ratio4)
              (if i = List.length results - 1 then "" else ",")))
      results;
    Buffer.add_string b "  ]\n}\n";
    Buffer.contents b
  in
  Out_channel.with_open_text "BENCH_kernels.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote BENCH_kernels.json\n";
  if gate then begin
    let slow =
      List.filter
        (fun (_, _, _, _, r1, r4, zero_copy) ->
           (not zero_copy) && (r1 < 1.0 || r4 < 1.0))
        results
    in
    List.iter
      (fun (name, _, _, _, r1, r4, _) ->
         Printf.eprintf
           "GATE: %s columnar/row ratio below 1.0 (jobs1 %.2f, jobs4 %.2f)\n"
           name r1 r4)
      slow;
    if slow <> [] then exit 1;
    Printf.printf
      "ratio gate passed: every timed kernel >= 1.0x vs row baseline \
       (zero-copy kernels skipped)\n"
  end

(* ---- fused vs unfused execution benchmark ----

   Two workloads at NetFlix scale: a select→map→project chain (fusion
   runs it as one pass with no intermediate tables) and a shared-scan
   DAG (two branches over the same HDFS relation; fusion fetches and
   charges it once). Each runs best-of-3 with fusion off and on, at
   jobs=1 so the comparison isolates fusion from the domain pool;
   outputs must be byte-identical. Writes BENCH_fusion.json. *)

let fusion_bench () =
  let open Relation in
  let ratings_n = 400_000 in
  let ratings =
    let schema =
      Schema.make
        [ { Schema.name = "user"; ty = Value.Tint };
          { Schema.name = "movie"; ty = Value.Tint };
          { Schema.name = "rating"; ty = Value.Tint } ]
    in
    Table.create_unchecked schema
      (Array.init ratings_n (fun i ->
           [| Value.Int (i * 7919 mod 480_189);
              Value.Int (i * 104_729 mod 17_000);
              Value.Int (1 + (i * 31 mod 5)) |]))
  in
  let hdfs = Engines.Hdfs.create () in
  Engines.Hdfs.put hdfs "ratings" ratings;
  let chain_graph =
    let b = Ir.Builder.create () in
    let r = Ir.Builder.input b "ratings" in
    let s = Ir.Builder.select b ~pred:Expr.(col "rating" >= int 2) r in
    let m =
      Ir.Builder.map b ~target:"centered"
        ~expr:Expr.(col "rating" - int 3)
        s
    in
    let p =
      Ir.Builder.project b ~name:"out" ~columns:[ "user"; "centered" ] m
    in
    Ir.Builder.finish b ~outputs:[ p ]
  in
  let shared_graph =
    let b = Ir.Builder.create () in
    let lovers =
      Ir.Builder.project b ~columns:[ "user" ]
        (Ir.Builder.select b
           ~pred:Expr.(col "rating" >= int 4)
           (Ir.Builder.input b "ratings"))
    in
    let haters =
      Ir.Builder.project b ~columns:[ "user" ]
        (Ir.Builder.select b
           ~pred:Expr.(col "rating" <= int 1)
           (Ir.Builder.input b "ratings"))
    in
    let u = Ir.Builder.union b ~name:"out" lovers haters in
    Ir.Builder.finish b ~outputs:[ u ]
  in
  let reps = 3 in
  let out_csv (result : Engines.Exec_helper.result) =
    match
      List.find_opt (fun (n, _, _) -> n = "out")
        result.Engines.Exec_helper.outputs
    with
    | Some (_, t, _) -> Table.to_csv t
    | None ->
      Printf.eprintf "FATAL: workload produced no \"out\" relation\n";
      exit 1
  in
  let best_of enabled g =
    Ir.Fusion.set_enabled (Some enabled);
    Fun.protect ~finally:(fun () -> Ir.Fusion.set_enabled None)
    @@ fun () ->
    let best = ref infinity and out = ref None in
    for _ = 1 to reps do
      let result, s =
        Obs.Trace.time (fun () ->
            Pool.with_jobs 1 (fun () -> Engines.Exec_helper.execute ~hdfs g))
      in
      if s < !best then best := s;
      out := Some result
    done;
    (Option.get !out, !best)
  in
  let saved_gauge () =
    Option.value ~default:0.
      (Obs.Metrics.gauge Obs.Metrics.default "fusion.intermediate_mb_saved")
  in
  Printf.printf "fused vs unfused execution (%d rows, jobs=1, best of %d)\n"
    ratings_n reps;
  Printf.printf "%-12s %12s %12s %9s %10s %10s  %s\n" "workload" "unfused"
    "fused" "speedup" "saved MB" "input MB" "identical";
  let results =
    List.map
      (fun (name, g) ->
         let unfused_res, unfused_s = best_of false g in
         let saved0 = saved_gauge () in
         let fused_res, fused_s = best_of true g in
         let saved_mb = (saved_gauge () -. saved0) /. float_of_int reps in
         let identical = out_csv unfused_res = out_csv fused_res in
         let speedup = unfused_s /. fused_s in
         let input_mb =
           fused_res.Engines.Exec_helper.volumes.Engines.Perf.input_mb
         in
         Printf.printf "%-12s %10.1fms %10.1fms %8.2fx %9.1f %9.1f  %b\n%!"
           name (1000. *. unfused_s) (1000. *. fused_s) speedup saved_mb
           input_mb identical;
         if not identical then begin
           Printf.eprintf "FATAL: %s fused output differs from unfused\n"
             name;
           exit 1
         end;
         (name, unfused_s, fused_s, speedup, saved_mb, input_mb))
      [ ("chain", chain_graph); ("shared-scan", shared_graph) ]
  in
  let json =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    Buffer.add_string b (Printf.sprintf "  \"rows\": %d,\n" ratings_n);
    Buffer.add_string b (Printf.sprintf "  \"reps\": %d,\n" reps);
    Buffer.add_string b "  \"workloads\": [\n";
    List.iteri
      (fun i (name, unfused_s, fused_s, speedup, saved_mb, input_mb) ->
         Buffer.add_string b
           (Printf.sprintf
              "    {\"workload\": %S, \"unfused_s\": %.6f, \"fused_s\": \
               %.6f, \"speedup\": %.3f, \"intermediate_mb_saved\": %.3f, \
               \"fused_input_mb\": %.3f}%s\n"
              name unfused_s fused_s speedup saved_mb input_mb
              (if i = List.length results - 1 then "" else ",")))
      results;
    Buffer.add_string b "  ]\n}\n";
    Buffer.contents b
  in
  Out_channel.with_open_text "BENCH_fusion.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote BENCH_fusion.json\n"

(* ---- runtime supervision benchmark ----

   Three scenarios exercising the supervisor end-to-end and checking
   the executor's accounting against the analytic model:

   (1) speculation: a straggler*4 on the planned (Hadoop) job races a
       speculative duplicate on Metis; the duplicate wins, and the
       observed makespan and wasted seconds must equal
       Faults.speculate's prediction computed from independently
       measured quantities (observed == predicted);
   (2) circuit breaker: repeated engine failures quarantine Metis,
       the planner avoids it, and after the cool-down a probe
       re-admits it;
   (3) adaptive re-planning: a heavy GROUP BY collapses the modeled
       64 MB input to almost nothing, the size misprediction crosses
       the threshold and the remaining DAG suffix is re-planned.

   Writes BENCH_supervision.json. *)

let supervision_bench () =
  let open Relation in
  let kv_schema =
    Schema.make
      [ { Schema.name = "k"; ty = Value.Tint };
        { Schema.name = "v"; ty = Value.Tint } ]
  in
  let kv_table rows =
    Table.create kv_schema
      (List.map (fun (k, v) -> [| Value.Int k; Value.Int v |]) rows)
  in
  let hdfs_with rows =
    let hdfs = Engines.Hdfs.create () in
    Engines.Hdfs.put hdfs "r" ~modeled_mb:64. (kv_table rows);
    hdfs
  in
  (* select + group: one shuffle, a single job on MapReduce engines *)
  let one_shuffle_graph () =
    let b = Ir.Builder.create () in
    let r = Ir.Builder.input b "r" in
    let s = Ir.Builder.select b ~pred:Expr.(col "v" > int 4) r in
    let g =
      Ir.Builder.group_by b ~name:"out" ~keys:[ "k" ]
        ~aggs:[ Aggregate.make (Aggregate.Sum "v") ~as_name:"v" ]
        s
    in
    Ir.Builder.finish b ~outputs:[ g ]
  in
  (* group + distinct: two shuffles, a two-job plan on Hadoop *)
  let two_shuffle_graph () =
    let b = Ir.Builder.create () in
    let r = Ir.Builder.input b "r" in
    let g =
      Ir.Builder.group_by b ~keys:[ "k" ]
        ~aggs:[ Aggregate.make (Aggregate.Sum "v") ~as_name:"v" ]
        r
    in
    let d = Ir.Builder.distinct b ~name:"out" g in
    Ir.Builder.finish b ~outputs:[ d ]
  in
  let m = Experiments.Common.musketeer_for (Experiments.Common.ec2 16) in
  let counter name = Obs.Metrics.counter Obs.Metrics.default name in
  let run ?faults ?(supervision = Musketeer.Supervisor.disabled)
      ?(candidates = []) ~backends ~workflow graph rows =
    let hdfs = hdfs_with rows in
    let plan, g' =
      match Musketeer.plan m ~backends ~workflow ~hdfs graph with
      | Some p -> p
      | None ->
        Printf.eprintf "FATAL: %s does not plan\n" workflow;
        exit 1
    in
    let candidates = if candidates = [] then backends else candidates in
    let exec () =
      Musketeer.execute_plan ~recovery:Musketeer.Recovery.none ~supervision
        ~candidates ~record_history:false m ~workflow ~hdfs ~graph:g' plan
    in
    let result =
      match faults with
      | None -> exec ()
      | Some fp -> Engines.Injector.with_plan fp exec
    in
    match result with
    | Ok r -> (plan, g', hdfs, r)
    | Error e ->
      Printf.eprintf "FATAL: %s failed: %s\n" workflow
        (Engines.Report.error_to_string e);
      exit 1
  in
  let out_csv (r : Musketeer.Executor.result) =
    match List.assoc_opt "out" r.Musketeer.Executor.outputs with
    | Some t -> Table.to_csv (Table.sort_by t [ "k"; "v" ])
    | None ->
      Printf.eprintf "FATAL: no \"out\" relation\n";
      exit 1
  in
  let rows = List.init 60 (fun i -> (i mod 6, i)) in

  (* -- scenario 1: speculation, observed vs predicted -- *)
  Obs.Metrics.reset Obs.Metrics.default;
  let factor = 1.25 in
  let straggler4 =
    { Engines.Faults.seed = 42; probability = 1.;
      faults = [ Engines.Faults.Straggler { slowdown = 4. } ] }
  in
  let supervision =
    { Musketeer.Supervisor.deadline_factor = Some factor;
      workflow_deadline_s = None; speculate = true; replan_rel_error = None }
  in
  let _, _, _, fault_free =
    run ~backends:[ Engines.Backend.Hadoop ] ~workflow:"spec-base"
      (one_shuffle_graph ()) rows
  in
  let _, _, _, stragglered =
    run ~faults:straggler4 ~backends:[ Engines.Backend.Hadoop ]
      ~workflow:"spec-straggler" (one_shuffle_graph ()) rows
  in
  let plan, g', hdfs0, supervised =
    run ~faults:straggler4 ~supervision
      ~candidates:[ Engines.Backend.Hadoop; Engines.Backend.Metis ]
      ~backends:[ Engines.Backend.Hadoop ] ~workflow:"spec-sup"
      (one_shuffle_graph ()) rows
  in
  let _, _, _, metis_alone =
    run ~backends:[ Engines.Backend.Metis ] ~workflow:"spec-alt"
      (one_shuffle_graph ()) rows
  in
  (* the analytic race, from independently measured quantities *)
  let predicted_s =
    let est = Musketeer.estimator m ~workflow:"spec-sup" ~hdfs:hdfs0 g' in
    let backend, ids = List.hd plan.Musketeer.Partitioner.jobs in
    Musketeer.Cost.seconds
      (Musketeer.Cost.job_cost ~profile:(Musketeer.profile m) ~graph:g' ~est
         backend ids)
  in
  let race =
    Engines.Faults.speculate
      ~straggler_s:(4. *. fault_free.Musketeer.Executor.makespan_s)
      ~launch_s:(factor *. predicted_s)
      ~alt_s:metis_alone.Musketeer.Executor.makespan_s
  in
  let observed_s = supervised.Musketeer.Executor.makespan_s in
  let predicted_race_s = race.Engines.Faults.winner_makespan_s in
  let observed_waste_s =
    Option.value ~default:0.
      (Obs.Metrics.gauge Obs.Metrics.default "supervisor.speculation_wasted_s")
  in
  let spec_identical = out_csv fault_free = out_csv supervised in
  let spec_match =
    Float.abs (observed_s -. predicted_race_s) < 1e-6
    && Float.abs (observed_waste_s -. race.Engines.Faults.wasted_s) < 1e-6
  in
  Printf.printf "speculation under straggler*4 (deadline factor %.2f)\n"
    factor;
  Printf.printf "  %-28s %10.2fs\n" "fault-free makespan"
    fault_free.Musketeer.Executor.makespan_s;
  Printf.printf "  %-28s %10.2fs\n" "straggler, no supervision"
    stragglered.Musketeer.Executor.makespan_s;
  Printf.printf "  %-28s %10.2fs\n" "straggler + speculation" observed_s;
  Printf.printf "  %-28s %10.2fs\n" "predicted (Faults.speculate)"
    predicted_race_s;
  Printf.printf "  %-28s %10.2fs (predicted %.2fs)\n" "wasted copy work"
    observed_waste_s race.Engines.Faults.wasted_s;
  Printf.printf "  wins %d/%d  identical %b  observed==predicted %b\n%!"
    (counter "supervisor.speculation_wins")
    (counter "supervisor.speculations")
    spec_identical spec_match;
  if not (spec_identical && spec_match) then begin
    Printf.eprintf "FATAL: speculation accounting diverged\n";
    exit 1
  end;

  (* -- scenario 2: circuit breaker -- *)
  Obs.Metrics.reset Obs.Metrics.default;
  Engines.Breaker.enable ~threshold:2 ~window:4 ~cooldown:2 ();
  let breaker_result =
    Fun.protect ~finally:Engines.Breaker.disable @@ fun () ->
    let metis = Engines.Backend.Metis and hadoop = Engines.Backend.Hadoop in
    let planned_on backend =
      let hdfs = hdfs_with rows in
      match
        Musketeer.plan m ~backends:[ metis; hadoop ] ~workflow:"brk" ~hdfs
          (one_shuffle_graph ())
      with
      | Some (p, _) ->
        List.exists
          (fun (b, _) -> Engines.Backend.equal b backend)
          p.Musketeer.Partitioner.jobs
      | None -> false
    in
    let healthy = planned_on metis in
    Engines.Breaker.record_failure metis;
    Engines.Breaker.record_failure metis;
    let quarantined = Engines.Breaker.quarantined metis in
    let avoided = not (planned_on metis) in
    (* outcomes elsewhere advance the logical clock past the cool-down *)
    Engines.Breaker.record_success hadoop;
    Engines.Breaker.record_success hadoop;
    let half_open = Engines.Breaker.state metis = Engines.Breaker.Half_open in
    let readmitted = planned_on metis in
    Engines.Breaker.record_success metis;
    let reclosed = Engines.Breaker.state metis = Engines.Breaker.Closed in
    Printf.printf
      "\ncircuit breaker (threshold 2, window 4, cool-down 2)\n\
      \  planned while healthy %b -> quarantined %b -> avoided by planner \
       %b\n\
      \  half-open after cool-down %b -> re-admitted %b -> re-closed %b\n\
      \  trips %d  probes %d  re-closed %d\n%!"
      healthy quarantined avoided half_open readmitted reclosed
      (counter "breaker.trips") (counter "breaker.probes")
      (counter "breaker.reclosed");
    let ok =
      healthy && quarantined && avoided && half_open && readmitted && reclosed
    in
    if not ok then begin
      Printf.eprintf "FATAL: breaker scenario diverged\n";
      exit 1
    end;
    (counter "breaker.trips", counter "breaker.probes",
     counter "breaker.reclosed")
  in

  (* -- scenario 3: adaptive re-planning -- *)
  Obs.Metrics.reset Obs.Metrics.default;
  let replan_rows = List.init 80 (fun i -> (i mod 2, i mod 3)) in
  let replan_sup =
    { Musketeer.Supervisor.deadline_factor = None; workflow_deadline_s = None;
      speculate = false; replan_rel_error = Some 0.5 }
  in
  let _, _, _, plain =
    run ~backends:[ Engines.Backend.Hadoop ] ~workflow:"replan-base"
      (two_shuffle_graph ()) replan_rows
  in
  let _, _, _, replanned =
    run ~supervision:replan_sup
      ~candidates:[ Engines.Backend.Hadoop; Engines.Backend.Metis ]
      ~backends:[ Engines.Backend.Hadoop ] ~workflow:"replan-sup"
      (two_shuffle_graph ()) replan_rows
  in
  let mispredictions = counter "supervisor.mispredictions" in
  let replans = counter "supervisor.replans" in
  let replan_delta_s =
    Option.value ~default:0.
      (Obs.Metrics.gauge Obs.Metrics.default "supervisor.replan_delta_s")
  in
  let replan_identical = out_csv plain = out_csv replanned in
  Printf.printf
    "\nadaptive re-planning (threshold 0.5, 64 modeled MB collapsing)\n\
    \  static plan makespan %10.2fs\n\
    \  replanned   makespan %10.2fs\n\
    \  mispredictions %d  replans %d  predicted delta %.2fs  identical %b\n%!"
    plain.Musketeer.Executor.makespan_s
    replanned.Musketeer.Executor.makespan_s mispredictions replans
    replan_delta_s replan_identical;
  if not (replans >= 1 && replan_identical) then begin
    Printf.eprintf "FATAL: replan scenario diverged\n";
    exit 1
  end;

  let trips, probes, reclosed_n = breaker_result in
  let json =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"speculation\": {\n";
    Buffer.add_string b
      (Printf.sprintf "    \"fault_free_s\": %.6f,\n"
         fault_free.Musketeer.Executor.makespan_s);
    Buffer.add_string b
      (Printf.sprintf "    \"straggler_s\": %.6f,\n"
         stragglered.Musketeer.Executor.makespan_s);
    Buffer.add_string b
      (Printf.sprintf "    \"speculated_s\": %.6f,\n" observed_s);
    Buffer.add_string b
      (Printf.sprintf "    \"predicted_s\": %.6f,\n" predicted_race_s);
    Buffer.add_string b
      (Printf.sprintf "    \"wasted_s\": %.6f,\n" observed_waste_s);
    Buffer.add_string b
      (Printf.sprintf "    \"predicted_wasted_s\": %.6f,\n"
         race.Engines.Faults.wasted_s);
    Buffer.add_string b
      (Printf.sprintf "    \"observed_equals_predicted\": %b,\n" spec_match);
    Buffer.add_string b
      (Printf.sprintf "    \"outputs_identical\": %b\n  },\n" spec_identical);
    Buffer.add_string b "  \"breaker\": {\n";
    Buffer.add_string b (Printf.sprintf "    \"trips\": %d,\n" trips);
    Buffer.add_string b (Printf.sprintf "    \"probes\": %d,\n" probes);
    Buffer.add_string b (Printf.sprintf "    \"reclosed\": %d\n  },\n" reclosed_n);
    Buffer.add_string b "  \"replanning\": {\n";
    Buffer.add_string b
      (Printf.sprintf "    \"static_s\": %.6f,\n"
         plain.Musketeer.Executor.makespan_s);
    Buffer.add_string b
      (Printf.sprintf "    \"replanned_s\": %.6f,\n"
         replanned.Musketeer.Executor.makespan_s);
    Buffer.add_string b
      (Printf.sprintf "    \"mispredictions\": %d,\n" mispredictions);
    Buffer.add_string b (Printf.sprintf "    \"replans\": %d,\n" replans);
    Buffer.add_string b
      (Printf.sprintf "    \"predicted_delta_s\": %.6f,\n" replan_delta_s);
    Buffer.add_string b
      (Printf.sprintf "    \"outputs_identical\": %b\n  }\n}\n"
         replan_identical);
    Buffer.contents b
  in
  Out_channel.with_open_text "BENCH_supervision.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote BENCH_supervision.json\n"

(* ---- continuous calibration benchmark ----

   The same per-engine workflow suite runs three times against a fresh
   ledger. Run 1 executes uncalibrated and appends its records; each
   later run refits the per-engine correction factors from the ledger
   first, so the |relative error| p50/p90 must shrink strictly
   run-over-run. A control pass with calibration disabled must stay
   flat, and outputs must be byte-identical across every run of both
   modes — calibration may only touch the cost model, never results.

   Each workflow is two identical disconnected branches: the
   partitioner has to cut them into two jobs on the pinned engine, so
   every engine clears Calibrate's min-sample threshold on the very
   first run. Writes BENCH_calibration.json. *)

let calibration_bench () =
  let open Relation in
  let kv_schema =
    Schema.make
      [ { Schema.name = "k"; ty = Value.Tint };
        { Schema.name = "v"; ty = Value.Tint } ]
  in
  let rows = List.init 60 (fun i -> (i mod 6, i)) in
  let kv_table () =
    Table.create kv_schema
      (List.map (fun (k, v) -> [| Value.Int k; Value.Int v |]) rows)
  in
  let hdfs_with () =
    let hdfs = Engines.Hdfs.create () in
    Engines.Hdfs.put hdfs "r1" ~modeled_mb:64. (kv_table ());
    Engines.Hdfs.put hdfs "r2" ~modeled_mb:64. (kv_table ());
    hdfs
  in
  let twin_graph () =
    let b = Ir.Builder.create () in
    let branch input out =
      let r = Ir.Builder.input b input in
      let s = Ir.Builder.select b ~pred:Expr.(col "v" > int 4) r in
      Ir.Builder.group_by b ~name:out ~keys:[ "k" ]
        ~aggs:[ Aggregate.make (Aggregate.Sum "v") ~as_name:"v" ]
        s
    in
    let o1 = branch "r1" "out1" in
    let o2 = branch "r2" "out2" in
    Ir.Builder.finish b ~outputs:[ o1; o2 ]
  in
  let engines =
    [ Engines.Backend.Hadoop; Engines.Backend.Spark;
      Engines.Backend.Naiad; Engines.Backend.Metis ]
  in
  let runs = 3 in
  let m = Experiments.Common.musketeer_for (Experiments.Common.ec2 16) in
  let percentile q xs =
    let a = Array.of_list (List.sort compare xs) in
    let n = Array.length a in
    if n = 0 then 0.
    else begin
      let idx = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor idx) in
      let hi = int_of_float (Float.ceil idx) in
      a.(lo) +. ((idx -. float_of_int lo) *. (a.(hi) -. a.(lo)))
    end
  in
  let out_csv name (r : Musketeer.Executor.result) =
    match List.assoc_opt name r.Musketeer.Executor.outputs with
    | Some t -> Table.to_csv (Table.sort_by t [ "k"; "v" ])
    | None ->
      Printf.eprintf "FATAL: no %S relation\n" name;
      exit 1
  in
  (* one pass over the suite: execute every engine's workflow, append a
     ledger record per workflow, return (p50, p90, outputs-csv) *)
  let run_suite ~ledger =
    Obs.Metrics.reset Obs.Metrics.default;
    let outputs = ref [] in
    List.iter
      (fun backend ->
         let workflow = "cal-" ^ Engines.Backend.name backend in
         let hdfs = hdfs_with () in
         let plan, g' =
           match
             Musketeer.plan m ~backends:[ backend ] ~workflow ~hdfs
               (twin_graph ())
           with
           | Some p -> p
           | None ->
             Printf.eprintf "FATAL: %s does not plan\n" workflow;
             exit 1
         in
         if List.length plan.Musketeer.Partitioner.jobs < 2 then begin
           Printf.eprintf
             "FATAL: %s planned %d job(s); the twin branches must give \
              two samples per engine\n"
             workflow
             (List.length plan.Musketeer.Partitioner.jobs);
           exit 1
         end;
         let since = Obs.Ledger.mark Obs.Metrics.default in
         match
           Musketeer.execute_plan ~record_history:false m ~workflow ~hdfs
             ~graph:g' plan
         with
         | Error e ->
           Printf.eprintf "FATAL: %s failed: %s\n" workflow
             (Engines.Report.error_to_string e);
           exit 1
         | Ok r ->
           let partition =
             List.map
               (fun (b, ids) -> (Engines.Backend.name b, ids))
               plan.Musketeer.Partitioner.jobs
           in
           Obs.Ledger.append ~filename:ledger
             (Obs.Ledger.snapshot ~since ~workflow
                ~ir_hash:(Ir.Dag.canonical_hash g') ~partition
                ~makespan_s:r.Musketeer.Executor.makespan_s ());
           outputs :=
             (workflow, out_csv "out1" r ^ out_csv "out2" r) :: !outputs)
      engines;
    let errors =
      List.filter_map
        (fun (p : Obs.Metrics.prediction) ->
           if p.observed_s > 0. then
             Some (Float.abs (p.predicted_s -. p.observed_s) /. p.observed_s)
           else None)
        (Obs.Metrics.predictions Obs.Metrics.default)
    in
    (percentile 0.5 errors, percentile 0.9 errors, List.rev !outputs)
  in
  (* three runs against a fresh ledger; refit factors before each *)
  let run_mode ~calibrate =
    let ledger = Filename.temp_file "bench_calibration" ".jsonl" in
    Musketeer.Calibrate.reset ();
    Musketeer.Calibrate.set_enabled calibrate;
    Fun.protect
      ~finally:(fun () ->
          Musketeer.Calibrate.reset ();
          try Sys.remove ledger with Sys_error _ -> ())
    @@ fun () ->
    let results = ref [] in
    for _run = 1 to runs do
      ignore
        (Musketeer.Calibrate.install_from
           (Obs.Ledger.load ~filename:ledger ()));
      results := run_suite ~ledger :: !results
    done;
    let factors =
      Musketeer.Calibrate.fit (Obs.Ledger.load ~filename:ledger ())
    in
    (List.rev !results, factors)
  in
  let calibrated, factors = run_mode ~calibrate:true in
  let uncalibrated, _ = run_mode ~calibrate:false in
  Printf.printf "cost-model calibration over %d runs (engines: %s)\n" runs
    (String.concat ", " (List.map Engines.Backend.name engines));
  Printf.printf "%-6s %14s %14s %16s %16s\n" "run" "cal p50" "cal p90"
    "no-cal p50" "no-cal p90";
  List.iteri
    (fun i ((cp50, cp90, _), (up50, up90, _)) ->
       Printf.printf "%-6d %13.1f%% %13.1f%% %15.1f%% %15.1f%%\n" (i + 1)
         (100. *. cp50) (100. *. cp90) (100. *. up50) (100. *. up90))
    (List.combine calibrated uncalibrated);
  List.iter
    (fun (backend, f) ->
       Printf.printf "  fitted factor %-12s x%.3f\n" backend f)
    factors;
  (* byte-identity: every run of both modes must produce the same rows *)
  let baseline =
    match calibrated with
    | (_, _, outputs) :: _ -> outputs
    | [] -> []
  in
  let identical =
    List.for_all
      (fun (_, _, outputs) -> outputs = baseline)
      (calibrated @ uncalibrated)
  in
  Printf.printf "  outputs identical across runs and modes: %b\n%!" identical;
  if not identical then begin
    Printf.eprintf "FATAL: calibration changed workflow outputs\n";
    exit 1
  end;
  let rec strictly_decreasing = function
    | (a50, a90, _) :: ((b50, b90, _) :: _ as rest) ->
      b50 < a50 && b90 < a90 && strictly_decreasing rest
    | _ -> true
  in
  if not (strictly_decreasing calibrated) then begin
    Printf.eprintf
      "FATAL: calibrated |rel error| must shrink strictly run-over-run\n";
    exit 1
  end;
  let flat =
    match uncalibrated with
    | (p50, p90, _) :: rest ->
      List.for_all
        (fun (q50, q90, _) ->
           Float.abs (q50 -. p50) < 1e-12 && Float.abs (q90 -. p90) < 1e-12)
        rest
    | [] -> true
  in
  if not flat then begin
    Printf.eprintf
      "FATAL: without calibration the error trend must stay flat\n";
    exit 1
  end;
  let json =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    Buffer.add_string b (Printf.sprintf "  \"runs\": %d,\n" runs);
    Buffer.add_string b
      (Printf.sprintf "  \"engines\": [%s],\n"
         (String.concat ", "
            (List.map
               (fun e -> Printf.sprintf "%S" (Engines.Backend.name e))
               engines)));
    let series name results =
      Buffer.add_string b (Printf.sprintf "  %S: [\n" name);
      List.iteri
        (fun i (p50, p90, _) ->
           Buffer.add_string b
             (Printf.sprintf
                "    {\"run\": %d, \"abs_rel_error_p50\": %.6f, \
                 \"abs_rel_error_p90\": %.6f}%s\n"
                (i + 1) p50 p90
                (if i = List.length results - 1 then "" else ",")))
        results;
      Buffer.add_string b "  ],\n"
    in
    series "calibrated" calibrated;
    series "uncalibrated" uncalibrated;
    Buffer.add_string b "  \"factors\": [\n";
    List.iteri
      (fun i (backend, f) ->
         Buffer.add_string b
           (Printf.sprintf "    {\"backend\": %S, \"factor\": %.6f}%s\n"
              backend f
              (if i = List.length factors - 1 then "" else ",")))
      factors;
    Buffer.add_string b "  ],\n";
    Buffer.add_string b
      (Printf.sprintf "  \"outputs_identical\": %b\n}\n" identical);
    Buffer.contents b
  in
  Out_channel.with_open_text "BENCH_calibration.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote BENCH_calibration.json\n"

(* ---- serving-layer benchmark ----

   Exercises [Serve.Service] end-to-end against synthetic multi-tenant
   load and gates the three serving mechanisms:

   (1) byte-identity: a small load is served under every combination of
       jobs {1,4} x fusion {on,off} x columnar {on,off}, and every
       served submission's outputs must byte-match a one-shot run of
       the same workflow on a snapshot of the initial HDFS (fatal
       otherwise) — caching, admission and scan sharing may only move
       accounting, never rows;
   (2) plan cache: on repeat traffic the hit rate must be >= 90% and
       warm (hit) planning must be >= 5x faster than cold planning;
   (3) cross-workflow shared scans: a burst of co-admitted workflows
       reading the same input must pay exactly one modeled HDFS fetch.

   Writes BENCH_serve.json. *)

let serve_bench () =
  let open Relation in
  let kv_schema =
    Schema.make
      [ { Schema.name = "k"; ty = Value.Tint };
        { Schema.name = "v"; ty = Value.Tint } ]
  in
  let kv_table seed =
    Table.create kv_schema
      (List.init 120 (fun i ->
           [| Value.Int ((i + seed) mod 7); Value.Int (i * (seed + 3)) |]))
  in
  let fresh_hdfs () =
    let hdfs = Engines.Hdfs.create () in
    Engines.Hdfs.put hdfs "r1" ~modeled_mb:64. (kv_table 1);
    Engines.Hdfs.put hdfs "r2" ~modeled_mb:48. (kv_table 2);
    hdfs
  in
  (* both workflows read r1, so co-admitted submissions share its scan *)
  let agg_graph () =
    let b = Ir.Builder.create () in
    let r = Ir.Builder.input b "r1" in
    let s = Ir.Builder.select b ~pred:Expr.(col "v" > int 4) r in
    let m =
      Ir.Builder.map b ~target:"centered" ~expr:Expr.(col "v" - int 3) s
    in
    let g =
      Ir.Builder.group_by b ~name:"out" ~keys:[ "k" ]
        ~aggs:[ Aggregate.make (Aggregate.Sum "centered") ~as_name:"v" ]
        m
    in
    Ir.Builder.finish b ~outputs:[ g ]
  in
  let scanmate_graph () =
    let b = Ir.Builder.create () in
    let b1 =
      Ir.Builder.project b ~columns:[ "k" ]
        (Ir.Builder.select b
           ~pred:Expr.(col "v" <= int 40)
           (Ir.Builder.input b "r1"))
    in
    let b2 =
      Ir.Builder.project b ~columns:[ "k" ] (Ir.Builder.input b "r2")
    in
    let u = Ir.Builder.union b b1 b2 in
    let d = Ir.Builder.distinct b ~name:"out" u in
    Ir.Builder.finish b ~outputs:[ d ]
  in
  let tenants = [ ("gold", 3.); ("bronze", 1.) ] in
  let mix =
    [ { Serve.Client.workflow = "agg"; graph = agg_graph (); weight = 1. };
      { Serve.Client.workflow = "scanmate"; graph = scanmate_graph ();
        weight = 1. } ]
  in
  let config =
    { Serve.Service.default_config with
      Serve.Service.concurrency = 4; cache_capacity = 128;
      weights = tenants }
  in
  let sorted_csv outputs =
    List.sort compare
      (List.map (fun (name, t) -> (name, Table.to_csv t)) outputs)
  in
  let cluster = Experiments.Common.ec2 16 in
  (* one-shot reference: fresh manager, no cache, no sharing *)
  let reference_outputs ~hdfs (e : Serve.Client.mix_entry) =
    let h = Engines.Hdfs.snapshot hdfs in
    let m = Experiments.Common.musketeer_for cluster in
    match Musketeer.plan m ~workflow:e.workflow ~hdfs:h e.graph with
    | None ->
      Printf.eprintf "FATAL: %s does not plan\n" e.workflow;
      exit 1
    | Some (plan, g') -> (
      match
        Musketeer.execute_plan ~record_history:false m ~workflow:e.workflow
          ~hdfs:h ~graph:g' plan
      with
      | Error err ->
        Printf.eprintf "FATAL: one-shot %s failed: %s\n" e.workflow
          (Engines.Report.error_to_string err);
        exit 1
      | Ok r -> sorted_csv r.Musketeer.Executor.outputs)
  in

  (* -- part 1: byte-identity matrix -- *)
  let identity_configs = ref 0 in
  List.iter
    (fun jobs ->
       List.iter
         (fun fusion ->
            List.iter
              (fun columnar ->
                 incr identity_configs;
                 Pool.with_jobs jobs @@ fun () ->
                 Column.with_enabled columnar @@ fun () ->
                 Ir.Fusion.set_enabled (Some fusion);
                 Fun.protect
                   ~finally:(fun () -> Ir.Fusion.set_enabled None)
                 @@ fun () ->
                 let hdfs = fresh_hdfs () in
                 let base = Engines.Hdfs.snapshot hdfs in
                 let m = Experiments.Common.musketeer_for cluster in
                 let subs =
                   Serve.Client.generate ~seed:4242 ~rate_per_s:1.
                     ~count:8 ~tenants ~mix ()
                 in
                 let outcomes, _ =
                   Serve.Service.run ~config m ~hdfs subs
                 in
                 let reference =
                   List.map
                     (fun (e : Serve.Client.mix_entry) ->
                        (e.workflow, reference_outputs ~hdfs:base e))
                     mix
                 in
                 List.iter
                   (fun (o : Serve.Service.outcome) ->
                      (match o.error with
                       | Some err ->
                         Printf.eprintf
                           "FATAL: serve %s failed (jobs=%d fusion=%b \
                            columnar=%b): %s\n"
                           o.sub.Serve.Service.workflow jobs fusion columnar
                           err;
                         exit 1
                       | None -> ());
                      let want =
                        List.assoc o.sub.Serve.Service.workflow reference
                      in
                      if sorted_csv o.outputs <> want then begin
                        Printf.eprintf
                          "FATAL: served %s output differs from one-shot \
                           run (jobs=%d fusion=%b columnar=%b)\n"
                          o.sub.Serve.Service.workflow jobs fusion columnar;
                        exit 1
                      end)
                   outcomes)
              [ true; false ])
         [ true; false ])
    [ 1; 4 ];
  Printf.printf
    "identity: 8 submissions x %d configs (jobs x fusion x columnar) \
     byte-identical to one-shot runs\n%!"
    !identity_configs;

  (* -- part 2: repeat-traffic throughput, latency and plan cache -- *)
  Obs.Metrics.reset Obs.Metrics.default;
  let load_count = 60 and load_rate = 2. in
  let hdfs = fresh_hdfs () in
  let m = Experiments.Common.musketeer_for cluster in
  let subs =
    Serve.Client.generate ~seed:4242 ~rate_per_s:load_rate ~count:load_count
      ~tenants ~mix ()
  in
  let outcomes, svc = Serve.Service.run ~config m ~hdfs subs in
  let s = Serve.Service.summarize svc outcomes in
  Serve.Service.pp_summary Format.std_formatter s;
  if s.Serve.Service.errors > 0 then begin
    Printf.eprintf "FATAL: %d serve errors\n" s.Serve.Service.errors;
    exit 1
  end;
  if s.Serve.Service.cache_hit_rate < 0.9 then begin
    Printf.eprintf "FATAL: plan-cache hit rate %.1f%% < 90%% on repeat traffic\n"
      (100. *. s.Serve.Service.cache_hit_rate);
    exit 1
  end;
  let warm_speedup =
    s.Serve.Service.plan_cold_s /. Float.max s.Serve.Service.plan_warm_s 1e-9
  in
  if warm_speedup < 5. then begin
    Printf.eprintf "FATAL: warm planning only %.1fx faster than cold (< 5x)\n"
      warm_speedup;
    exit 1
  end;

  (* -- part 3: co-admitted same-input scans pay once -- *)
  let burst_n = 4 in
  let hdfs3 = fresh_hdfs () in
  let m3 = Experiments.Common.musketeer_for cluster in
  let burst =
    List.init burst_n (fun i ->
        { Serve.Service.tenant = (if i mod 2 = 0 then "gold" else "bronze");
          workflow = "agg"; graph = agg_graph (); arrival_s = 0.;
          slo_s = None })
  in
  let burst_outcomes, svc3 = Serve.Service.run ~config m3 ~hdfs:hdfs3 burst in
  List.iter
    (fun (o : Serve.Service.outcome) ->
       match o.error with
       | Some err ->
         Printf.eprintf "FATAL: burst submission failed: %s\n" err;
         exit 1
       | None -> ())
    burst_outcomes;
  let paid = Engines.Scan_share.paid_reads (Serve.Service.share svc3) "r1" in
  Printf.printf
    "\nco-admission: %d concurrent workflows reading r1 paid %d modeled \
     fetch(es)\n%!"
    burst_n paid;
  if paid <> 1 then begin
    Printf.eprintf
      "FATAL: co-admitted same-input workflows paid %d reads (want 1)\n"
      paid;
    exit 1
  end;

  let json =
    let b = Buffer.create 2048 in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"identity\": {\"configs\": %d, \"submissions_each\": 8, \
          \"ok\": true},\n"
         !identity_configs);
    Buffer.add_string b "  \"load\": {\n";
    Buffer.add_string b
      (Printf.sprintf "    \"submissions\": %d,\n" load_count);
    Buffer.add_string b
      (Printf.sprintf "    \"rate_per_s\": %.3f,\n" load_rate);
    Buffer.add_string b
      (Printf.sprintf "    \"throughput_wps\": %.6f,\n"
         s.Serve.Service.throughput_wps);
    Buffer.add_string b
      (Printf.sprintf "    \"latency_p50_s\": %.6f,\n"
         s.Serve.Service.latency_p50_s);
    Buffer.add_string b
      (Printf.sprintf "    \"latency_p99_s\": %.6f,\n"
         s.Serve.Service.latency_p99_s);
    Buffer.add_string b
      (Printf.sprintf "    \"cache_hit_rate\": %.6f,\n"
         s.Serve.Service.cache_hit_rate);
    Buffer.add_string b
      (Printf.sprintf "    \"plan_cold_s\": %.9f,\n"
         s.Serve.Service.plan_cold_s);
    Buffer.add_string b
      (Printf.sprintf "    \"plan_warm_s\": %.9f,\n"
         s.Serve.Service.plan_warm_s);
    Buffer.add_string b
      (Printf.sprintf "    \"warm_speedup\": %.3f,\n" warm_speedup);
    Buffer.add_string b
      (Printf.sprintf "    \"scan_saved_mb\": %.3f\n"
         s.Serve.Service.scan_saved_mb);
    Buffer.add_string b "  },\n";
    Buffer.add_string b "  \"tenants\": [\n";
    let n_tenants = List.length s.Serve.Service.tenants in
    List.iteri
      (fun i (ts : Serve.Service.tenant_summary) ->
         Buffer.add_string b
           (Printf.sprintf
              "    {\"tenant\": %S, \"served\": %d, \
               \"queue_delay_p50_s\": %.6f, \"queue_delay_p99_s\": %.6f, \
               \"latency_p99_s\": %.6f}%s\n"
              ts.st_tenant ts.st_completed ts.st_queue_p50_s
              ts.st_queue_p99_s ts.st_latency_p99_s
              (if i = n_tenants - 1 then "" else ",")))
      s.Serve.Service.tenants;
    Buffer.add_string b "  ],\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"sharing\": {\"co_admitted\": %d, \"paid_reads\": %d}\n"
         burst_n paid);
    Buffer.add_string b "}\n";
    Buffer.contents b
  in
  Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote BENCH_serve.json\n"

(* == target: subplan — common-subplan sharing + sub-result cache ==

   Three claims about the serving layer's multi-query optimization,
   all enforced fatally (virtual time makes them deterministic):
   (1) byte identity: with sharing on, every served output equals a
       one-shot run of the same workflow under jobs {1,4} x fusion x
       columnar — sharing may only move accounting, never rows;
   (2) repeat traffic over a two-tenant common-prefix mix cuts the
       total modeled makespan by >= 1.3x versus sharing off;
   (3) the shared prefix executes once per input epoch: N sequential
       repeats pay one materialization and attach N-1 times, and an
       input overwrite forces exactly one repayment.

   Writes BENCH_subplan.json. *)

let subplan_bench () =
  let open Relation in
  let kv_schema =
    Schema.make
      [ { Schema.name = "k"; ty = Value.Tint };
        { Schema.name = "v"; ty = Value.Tint } ]
  in
  let kv_table seed =
    Table.create kv_schema
      (List.init 120 (fun i ->
           [| Value.Int ((i + seed) mod 7); Value.Int (i * (seed + 3)) |]))
  in
  let fresh_hdfs () =
    let hdfs = Engines.Hdfs.create () in
    Engines.Hdfs.put hdfs "r1" ~modeled_mb:512. (kv_table 1);
    Engines.Hdfs.put hdfs "r2" ~modeled_mb:48. (kv_table 2);
    hdfs
  in
  (* both workflows share a heavy featurize-and-aggregate prefix over
     r1 (select + map chain + projection + GROUP BY, so the modeled
     materialization is small); the suffixes differ, so only the
     prefix is shareable *)
  let prefix b =
    let r = Ir.Builder.input b "r1" in
    let s = Ir.Builder.select b ~pred:Expr.(col "v" > int 4) r in
    let m = ref s in
    for i = 1 to 6 do
      m :=
        Ir.Builder.map b
          ~target:(Printf.sprintf "m%d" i)
          ~expr:Expr.(col "v" + int i)
          !m
    done;
    let p = Ir.Builder.project b ~columns:[ "k"; "m6" ] !m in
    Ir.Builder.group_by b ~keys:[ "k" ]
      ~aggs:[ Aggregate.make (Aggregate.Sum "m6") ~as_name:"v" ]
      p
  in
  let agg_graph () =
    let b = Ir.Builder.create () in
    let p = prefix b in
    let m =
      Ir.Builder.map b ~name:"out" ~target:"w"
        ~expr:Expr.(col "v" + int 1)
        p
    in
    Ir.Builder.finish b ~outputs:[ m ]
  in
  let sorted_graph () =
    let b = Ir.Builder.create () in
    let p = prefix b in
    let s = Ir.Builder.sort b ~name:"out" ~by:"v" ~descending:true p in
    Ir.Builder.finish b ~outputs:[ s ]
  in
  let tenants = [ ("gold", 3.); ("bronze", 1.) ] in
  let mix =
    [ { Serve.Client.workflow = "agg"; graph = agg_graph (); weight = 1. };
      { Serve.Client.workflow = "sorted"; graph = sorted_graph ();
        weight = 1. } ]
  in
  let config ~cache_mb =
    { Serve.Service.default_config with
      Serve.Service.concurrency = 4; cache_capacity = 128;
      subresult_cache_mb = cache_mb; weights = tenants }
  in
  let sorted_csv outputs =
    List.sort compare
      (List.map (fun (name, t) -> (name, Table.to_csv t)) outputs)
  in
  let cluster = Experiments.Common.ec2 16 in
  let reference_outputs ~hdfs (e : Serve.Client.mix_entry) =
    let h = Engines.Hdfs.snapshot hdfs in
    let m = Experiments.Common.musketeer_for cluster in
    match Musketeer.plan m ~workflow:e.workflow ~hdfs:h e.graph with
    | None ->
      Printf.eprintf "FATAL: %s does not plan\n" e.workflow;
      exit 1
    | Some (plan, g') -> (
      match
        Musketeer.execute_plan ~record_history:false m ~workflow:e.workflow
          ~hdfs:h ~graph:g' plan
      with
      | Error err ->
        Printf.eprintf "FATAL: one-shot %s failed: %s\n" e.workflow
          (Engines.Report.error_to_string err);
        exit 1
      | Ok r -> sorted_csv r.Musketeer.Executor.outputs)
  in

  (* -- part 1: byte-identity matrix with sharing ON -- *)
  let identity_configs = ref 0 in
  List.iter
    (fun jobs ->
       List.iter
         (fun fusion ->
            List.iter
              (fun columnar ->
                 incr identity_configs;
                 Pool.with_jobs jobs @@ fun () ->
                 Column.with_enabled columnar @@ fun () ->
                 Ir.Fusion.set_enabled (Some fusion);
                 Fun.protect
                   ~finally:(fun () -> Ir.Fusion.set_enabled None)
                 @@ fun () ->
                 let hdfs = fresh_hdfs () in
                 let base = Engines.Hdfs.snapshot hdfs in
                 let m = Experiments.Common.musketeer_for cluster in
                 let subs =
                   Serve.Client.generate ~seed:4242 ~rate_per_s:1.
                     ~count:8 ~tenants ~mix ()
                 in
                 let outcomes, _ =
                   Serve.Service.run ~config:(config ~cache_mb:256.) m
                     ~hdfs subs
                 in
                 let reference =
                   List.map
                     (fun (e : Serve.Client.mix_entry) ->
                        (e.workflow, reference_outputs ~hdfs:base e))
                     mix
                 in
                 List.iter
                   (fun (o : Serve.Service.outcome) ->
                      (match o.error with
                       | Some err ->
                         Printf.eprintf
                           "FATAL: shared serve %s failed (jobs=%d \
                            fusion=%b columnar=%b): %s\n"
                           o.sub.Serve.Service.workflow jobs fusion columnar
                           err;
                         exit 1
                       | None -> ());
                      let want =
                        List.assoc o.sub.Serve.Service.workflow reference
                      in
                      if sorted_csv o.outputs <> want then begin
                        Printf.eprintf
                          "FATAL: shared-subplan %s output differs from \
                           one-shot run (jobs=%d fusion=%b columnar=%b)\n"
                          o.sub.Serve.Service.workflow jobs fusion columnar;
                        exit 1
                      end)
                   outcomes)
              [ true; false ])
         [ true; false ])
    [ 1; 4 ];
  Printf.printf
    "identity: 8 shared-subplan submissions x %d configs (jobs x fusion x \
     columnar) byte-identical to one-shot runs\n%!"
    !identity_configs;

  (* -- part 2: repeat-traffic modeled-makespan cut -- *)
  let load_count = 24 in
  let run_load cache_mb =
    let hdfs = fresh_hdfs () in
    let m = Experiments.Common.musketeer_for cluster in
    let subs =
      Serve.Client.generate ~seed:4242 ~rate_per_s:1. ~count:load_count
        ~tenants ~mix ()
    in
    let outcomes, svc =
      Serve.Service.run ~config:(config ~cache_mb) m ~hdfs subs
    in
    List.iter
      (fun (o : Serve.Service.outcome) ->
         match o.error with
         | Some err ->
           Printf.eprintf "FATAL: submission failed (cache %.0f MB): %s\n"
             cache_mb err;
           exit 1
         | None -> ())
      outcomes;
    (outcomes, svc)
  in
  let total_makespan outcomes =
    List.fold_left
      (fun acc (o : Serve.Service.outcome) -> acc +. o.makespan_s)
      0. outcomes
  in
  let off_outcomes, _ = run_load 0. in
  let on_outcomes, on_svc = run_load 256. in
  let off_makespan = total_makespan off_outcomes
  and on_makespan = total_makespan on_outcomes in
  let speedup = off_makespan /. Float.max on_makespan 1e-9 in
  let hits =
    List.fold_left
      (fun acc (o : Serve.Service.outcome) -> acc + o.subplan_hits)
      0 on_outcomes
  and paid =
    List.fold_left
      (fun acc (o : Serve.Service.outcome) -> acc + o.subplan_paid)
      0 on_outcomes
  in
  let attached_mb = Engines.Subplan_share.attached_mb
                      (Serve.Service.subplan_share on_svc) in
  let cache_stats =
    Serve.Subresult_cache.stats (Serve.Service.subresult_cache on_svc)
  in
  Printf.printf
    "repeat traffic: %d submissions, modeled makespan %.1fs off -> %.1fs \
     on (%.2fx), %d prefixes attached / %d materialized\n%!"
    load_count off_makespan on_makespan speedup hits paid;
  if speedup < 1.3 then begin
    Printf.eprintf
      "FATAL: subplan sharing cut modeled makespan only %.2fx (< 1.3x)\n"
      speedup;
    exit 1
  end;
  if hits = 0 then begin
    Printf.eprintf "FATAL: no prefixes attached under repeat traffic\n";
    exit 1
  end;

  (* -- part 3: the prefix executes once per input epoch -- *)
  let hdfs3 = fresh_hdfs () in
  let m3 = Experiments.Common.musketeer_for cluster in
  let svc3 =
    Serve.Service.create ~config:(config ~cache_mb:256.) m3 ~hdfs:hdfs3
  in
  let one at =
    match
      Serve.Service.drive svc3
        [ { Serve.Service.tenant = "gold"; workflow = "agg";
            graph = agg_graph (); arrival_s = at; slo_s = None } ]
    with
    | [ o ] ->
      (match o.error with
       | Some err ->
         Printf.eprintf "FATAL: epoch submission failed: %s\n" err;
         exit 1
       | None -> ());
      (o.Serve.Service.subplan_hits, o.Serve.Service.subplan_paid)
    | _ ->
      Printf.eprintf "FATAL: expected one outcome\n";
      exit 1
  in
  let h1, p1 = one 0. in
  let h2, p2 = one 10000. in
  let h3, p3 = one 20000. in
  let epoch_paid = p1 + p2 + p3 and epoch_hits = h1 + h2 + h3 in
  Serve.Service.put_input svc3 "r1" ~modeled_mb:64. (kv_table 1);
  let h4, p4 = one 30000. in
  Printf.printf
    "epochs: 3 repeats paid %d materialization(s), attached %d; input \
     overwrite repaid %d\n%!"
    epoch_paid epoch_hits p4;
  if epoch_paid <> 1 || epoch_hits <> 2 then begin
    Printf.eprintf
      "FATAL: prefix not executed once per epoch (paid %d, want 1; \
       attached %d, want 2)\n"
      epoch_paid epoch_hits;
    exit 1
  end;
  if p4 <> 1 || h4 <> 0 then begin
    Printf.eprintf
      "FATAL: input overwrite must force exactly one repayment (paid %d, \
       attached %d)\n"
      p4 h4;
    exit 1
  end;

  let json =
    let b = Buffer.create 2048 in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"identity\": {\"configs\": %d, \"submissions_each\": 8, \
          \"ok\": true},\n"
         !identity_configs);
    Buffer.add_string b "  \"repeat\": {\n";
    Buffer.add_string b
      (Printf.sprintf "    \"submissions\": %d,\n" load_count);
    Buffer.add_string b
      (Printf.sprintf "    \"off_makespan_s\": %.6f,\n" off_makespan);
    Buffer.add_string b
      (Printf.sprintf "    \"on_makespan_s\": %.6f,\n" on_makespan);
    Buffer.add_string b
      (Printf.sprintf "    \"speedup\": %.3f,\n" speedup);
    Buffer.add_string b "    \"min_speedup\": 1.3,\n";
    Buffer.add_string b
      (Printf.sprintf "    \"subplan_hits\": %d,\n" hits);
    Buffer.add_string b
      (Printf.sprintf "    \"subplan_paid\": %d,\n" paid);
    Buffer.add_string b
      (Printf.sprintf "    \"attached_mb\": %.3f,\n" attached_mb);
    Buffer.add_string b
      (Printf.sprintf
         "    \"subresult_cache\": {\"hits\": %d, \"misses\": %d, \
          \"evictions\": %d, \"entries\": %d, \"bytes_mb\": %.3f}\n"
         cache_stats.Serve.Subresult_cache.hits
         cache_stats.Serve.Subresult_cache.misses
         cache_stats.Serve.Subresult_cache.evictions
         cache_stats.Serve.Subresult_cache.entries
         cache_stats.Serve.Subresult_cache.bytes_mb);
    Buffer.add_string b "  },\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"epochs\": {\"repeats\": 3, \"paid_first_epoch\": %d, \
          \"hits_first_epoch\": %d, \"paid_after_write\": %d}\n"
         epoch_paid epoch_hits p4);
    Buffer.add_string b "}\n";
    Buffer.contents b
  in
  Out_channel.with_open_text "BENCH_subplan.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote BENCH_subplan.json\n"

(* == target: overload — shedding, SLOs, chaos and crash-restart ==

   Four claims about the overload-hardened serving layer, all enforced
   fatally (virtual time makes them deterministic):
   (1) shedding: at 2x load, bounded queues + the pressure ladder keep
       p99 queue delay <= 5x the 1x baseline AND in-SLO goodput >= the
       unshed 2x run;
   (2) chaos identity: under fault injection + shedding + SLOs, every
       COMPLETED submission stays byte-identical to a one-shot run
       across jobs {1,4} x fusion x columnar, and no scan/subplan
       flight is left open;
   (3) crash-restart: a fresh service restored from the run ledger
       brings plan-cache hit rate and p99 latency back within 10% of
       steady state within 50 submissions;
   (4) the ledger written under overload round-trips (schema 1.3).

   Writes BENCH_overload.json. *)

let overload_bench () =
  let open Relation in
  let kv_schema =
    Schema.make
      [ { Schema.name = "k"; ty = Value.Tint };
        { Schema.name = "v"; ty = Value.Tint } ]
  in
  let kv_table seed =
    Table.create kv_schema
      (List.init 120 (fun i ->
           [| Value.Int ((i + seed) mod 7); Value.Int (i * (seed + 3)) |]))
  in
  let fresh_hdfs () =
    let hdfs = Engines.Hdfs.create () in
    Engines.Hdfs.put hdfs "r1" ~modeled_mb:64. (kv_table 1);
    Engines.Hdfs.put hdfs "r2" ~modeled_mb:48. (kv_table 2);
    hdfs
  in
  let agg_graph () =
    let b = Ir.Builder.create () in
    let r = Ir.Builder.input b "r1" in
    let s = Ir.Builder.select b ~pred:Expr.(col "v" > int 4) r in
    let m =
      Ir.Builder.map b ~target:"centered" ~expr:Expr.(col "v" - int 3) s
    in
    let g =
      Ir.Builder.group_by b ~name:"out" ~keys:[ "k" ]
        ~aggs:[ Aggregate.make (Aggregate.Sum "centered") ~as_name:"v" ]
        m
    in
    Ir.Builder.finish b ~outputs:[ g ]
  in
  let scanmate_graph () =
    let b = Ir.Builder.create () in
    let b1 =
      Ir.Builder.project b ~columns:[ "k" ]
        (Ir.Builder.select b
           ~pred:Expr.(col "v" <= int 40)
           (Ir.Builder.input b "r1"))
    in
    let b2 =
      Ir.Builder.project b ~columns:[ "k" ] (Ir.Builder.input b "r2")
    in
    let u = Ir.Builder.union b b1 b2 in
    let d = Ir.Builder.distinct b ~name:"out" u in
    Ir.Builder.finish b ~outputs:[ d ]
  in
  let tenants = [ ("gold", 3.); ("bronze", 1.) ] in
  let mix =
    [ { Serve.Client.workflow = "agg"; graph = agg_graph (); weight = 1. };
      { Serve.Client.workflow = "scanmate"; graph = scanmate_graph ();
        weight = 1. } ]
  in
  let cluster = Experiments.Common.ec2 16 in
  let slo = 10. in
  let base_config =
    { Serve.Service.default_config with
      Serve.Service.concurrency = 2; cache_capacity = 128;
      weights = tenants; default_slo_s = Some slo }
  in
  let shed_config =
    { base_config with
      Serve.Service.tenant_queue_cap = 3; global_queue_cap = 6;
      shed_policy = Serve.Service.Shed_lowest_weight;
      pressure_threshold_s = 5. }
  in
  let run_load config ~rate ~count =
    let hdfs = fresh_hdfs () in
    let m = Experiments.Common.musketeer_for cluster in
    let subs =
      Serve.Client.generate ~seed:4242 ~rate_per_s:rate ~count ~tenants
        ~mix ()
    in
    let outcomes, svc = Serve.Service.run ~config m ~hdfs subs in
    (Serve.Service.summarize svc outcomes, outcomes, svc)
  in
  let served_queue_p99 outcomes =
    Serve.Service.percentile 0.99
      (List.filter_map
         (fun (o : Serve.Service.outcome) ->
            match o.status with
            | Serve.Service.Served -> Some o.queue_delay_s
            | _ -> None)
         outcomes)
  in

  (* -- part 1: load shedding keeps queue delay and goodput -- *)
  let base_rate = 0.8 and over_factor = 2. and load_count = 48 in
  let s_base, o_base, _ = run_load base_config ~rate:base_rate
      ~count:load_count in
  let over_rate = base_rate *. over_factor in
  let s_unshed, o_unshed, _ = run_load base_config ~rate:over_rate
      ~count:load_count in
  let s_shed, o_shed, svc_shed = run_load shed_config ~rate:over_rate
      ~count:load_count in
  let p99_base = served_queue_p99 o_base in
  let p99_unshed = served_queue_p99 o_unshed in
  let p99_shed = served_queue_p99 o_shed in
  Printf.printf
    "shedding: queue p99 %.2fs at 1x -> %.2fs unshed / %.2fs shed at \
     %.0fx; goodput %.3f unshed -> %.3f shed (%d shed, %d expired)\n%!"
    p99_base p99_unshed p99_shed over_factor
    s_unshed.Serve.Service.goodput_wps s_shed.Serve.Service.goodput_wps
    s_shed.Serve.Service.shed s_shed.Serve.Service.expired;
  if s_base.Serve.Service.errors > 0 || s_unshed.Serve.Service.errors > 0
     || s_shed.Serve.Service.errors > 0 then begin
    Printf.eprintf "FATAL: serve errors in a fault-free overload run\n";
    exit 1
  end;
  if s_shed.Serve.Service.shed = 0 then begin
    Printf.eprintf
      "FATAL: the bounded 2x run shed nothing — it is not overloaded\n";
    exit 1
  end;
  if p99_shed > 5. *. Float.max p99_base 1e-9 then begin
    Printf.eprintf
      "FATAL: shed queue p99 %.2fs > 5x the 1x baseline %.2fs\n"
      p99_shed p99_base;
    exit 1
  end;
  if s_shed.Serve.Service.goodput_wps
     < s_unshed.Serve.Service.goodput_wps -. 1e-9 then begin
    Printf.eprintf
      "FATAL: shed goodput %.3f < unshed goodput %.3f at %.0fx load\n"
      s_shed.Serve.Service.goodput_wps s_unshed.Serve.Service.goodput_wps
      over_factor;
    exit 1
  end;
  if Serve.Service.open_flights svc_shed <> 0 then begin
    Printf.eprintf "FATAL: shed run leaked scan/subplan flights\n";
    exit 1
  end;

  (* -- part 2: chaos identity matrix -- *)
  let inject_plan =
    match Engines.Faults.parse_plan ~seed:4242 "worker@0.5;straggler*4:p=0.3"
    with
    | Ok p -> p
    | Error msg ->
      Printf.eprintf "FATAL: bad fault spec: %s\n" msg;
      exit 1
  in
  let chaos_config =
    { shed_config with
      Serve.Service.inject = Some inject_plan;
      recovery =
        { Musketeer.Recovery.default with Musketeer.Recovery.max_retries = 2 } }
  in
  let sorted_csv outputs =
    List.sort compare
      (List.map (fun (name, t) -> (name, Table.to_csv t)) outputs)
  in
  let reference_outputs ~hdfs (e : Serve.Client.mix_entry) =
    let h = Engines.Hdfs.snapshot hdfs in
    let m = Experiments.Common.musketeer_for cluster in
    match Musketeer.plan m ~workflow:e.workflow ~hdfs:h e.graph with
    | None ->
      Printf.eprintf "FATAL: %s does not plan\n" e.workflow;
      exit 1
    | Some (plan, g') -> (
      match
        Musketeer.execute_plan ~record_history:false m ~workflow:e.workflow
          ~hdfs:h ~graph:g' plan
      with
      | Error err ->
        Printf.eprintf "FATAL: one-shot %s failed: %s\n" e.workflow
          (Engines.Report.error_to_string err);
        exit 1
      | Ok r -> sorted_csv r.Musketeer.Executor.outputs)
  in
  let identity_configs = ref 0 in
  let identity_completed = ref 0 in
  let identity_dropped = ref 0 in
  List.iter
    (fun jobs ->
       List.iter
         (fun fusion ->
            List.iter
              (fun columnar ->
                 incr identity_configs;
                 Pool.with_jobs jobs @@ fun () ->
                 Column.with_enabled columnar @@ fun () ->
                 Ir.Fusion.set_enabled (Some fusion);
                 Fun.protect
                   ~finally:(fun () -> Ir.Fusion.set_enabled None)
                 @@ fun () ->
                 let hdfs = fresh_hdfs () in
                 let base = Engines.Hdfs.snapshot hdfs in
                 let m = Experiments.Common.musketeer_for cluster in
                 let subs =
                   Serve.Client.generate ~seed:4242 ~rate_per_s:over_rate
                     ~count:12 ~tenants ~mix ()
                 in
                 let outcomes, svc =
                   Serve.Service.run ~config:chaos_config m ~hdfs subs
                 in
                 let reference =
                   List.map
                     (fun (e : Serve.Client.mix_entry) ->
                        (e.workflow, reference_outputs ~hdfs:base e))
                     mix
                 in
                 List.iter
                   (fun (o : Serve.Service.outcome) ->
                      match o.status, o.error with
                      | Serve.Service.(Shed _ | Expired), _ | _, Some _ ->
                        incr identity_dropped
                      | Serve.Service.Served, None ->
                        incr identity_completed;
                        let want =
                          List.assoc o.sub.Serve.Service.workflow reference
                        in
                        if sorted_csv o.outputs <> want then begin
                          Printf.eprintf
                            "FATAL: completed %s output differs from \
                             one-shot run under chaos (jobs=%d fusion=%b \
                             columnar=%b)\n"
                            o.sub.Serve.Service.workflow jobs fusion
                            columnar;
                          exit 1
                        end)
                   outcomes;
                 if Serve.Service.open_flights svc <> 0 then begin
                   Printf.eprintf
                     "FATAL: chaos run leaked flights (jobs=%d fusion=%b \
                      columnar=%b)\n"
                     jobs fusion columnar;
                   exit 1
                 end)
              [ true; false ])
         [ true; false ])
    [ 1; 4 ];
  if !identity_completed = 0 then begin
    Printf.eprintf "FATAL: chaos matrix completed nothing\n";
    exit 1
  end;
  Printf.printf
    "chaos identity: %d completed submissions byte-identical across %d \
     configs (jobs x fusion x columnar; %d shed/expired/errored)\n%!"
    !identity_completed !identity_configs !identity_dropped;

  (* -- part 3: crash-restart recovery from the ledger -- *)
  let ledger_file = Filename.temp_file "musketeer_overload" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove ledger_file with _ -> ())
  @@ fun () ->
  let steady_config =
    { base_config with Serve.Service.ledger = Some ledger_file }
  in
  let hdfs = fresh_hdfs () in
  let m1 = Experiments.Common.musketeer_for cluster in
  let steady_count = 60 and restart_count = 50 in
  let arrivals count =
    Serve.Client.generate ~seed:4242 ~rate_per_s:base_rate ~count ~tenants
      ~mix ()
  in
  let svc1 = Serve.Service.create ~config:steady_config m1 ~hdfs in
  let o1 = Serve.Service.drive svc1 (arrivals steady_count) in
  let s1 = Serve.Service.summarize svc1 o1 in
  (* simulated crash: warm state dies, the ledger file and HDFS survive *)
  Engines.Breaker.reset ();
  let records =
    match Obs.Ledger.load ~filename:ledger_file () with
    | r -> r
    | exception Obs.Ledger.Schema_error msg ->
      Printf.eprintf "FATAL: overload ledger does not round-trip: %s\n" msg;
      exit 1
  in
  if List.length records < steady_count then begin
    Printf.eprintf "FATAL: ledger has %d records, expected >= %d\n"
      (List.length records) steady_count;
    exit 1
  end;
  let m2 = Experiments.Common.musketeer_for cluster in
  let svc2 = Serve.Service.create ~config:steady_config m2 ~hdfs in
  let stats =
    Serve.Service.restore svc2
      ~mix:
        (List.map
           (fun (e : Serve.Client.mix_entry) -> (e.workflow, e.graph))
           mix)
      records
  in
  Format.printf "%a@." Serve.Service.pp_restore_stats stats;
  (* same arrival process replayed against the restored service: warm
     state is the only thing that can differ from steady state *)
  let o2 = Serve.Service.drive svc2 (arrivals restart_count) in
  let s2 = Serve.Service.summarize svc2 o2 in
  let hit1 = s1.Serve.Service.cache_hit_rate in
  let hit2 = s2.Serve.Service.cache_hit_rate in
  let p99_1 = s1.Serve.Service.latency_p99_s in
  let p99_2 = s2.Serve.Service.latency_p99_s in
  Printf.printf
    "restart: cache hit rate %.1f%% -> %.1f%%, latency p99 %.2fs -> \
     %.2fs within %d submissions\n%!"
    (100. *. hit1) (100. *. hit2) p99_1 p99_2 restart_count;
  if stats.Serve.Service.r_warmed < List.length mix then begin
    Printf.eprintf "FATAL: restore warmed %d plans, expected %d\n"
      stats.Serve.Service.r_warmed (List.length mix);
    exit 1
  end;
  if Float.abs (hit2 -. hit1) > 0.10 *. Float.max hit1 1e-9 then begin
    Printf.eprintf
      "FATAL: restored hit rate %.1f%% not within 10%% of steady-state \
       %.1f%%\n"
      (100. *. hit2) (100. *. hit1);
    exit 1
  end;
  if Float.abs (p99_2 -. p99_1) > 0.10 *. Float.max p99_1 1e-9 then begin
    Printf.eprintf
      "FATAL: restored latency p99 %.2fs not within 10%% of steady-state \
       %.2fs\n"
      p99_2 p99_1;
    exit 1
  end;

  let json =
    let b = Buffer.create 2048 in
    Buffer.add_string b "{\n";
    Buffer.add_string b "  \"shedding\": {\n";
    Buffer.add_string b
      (Printf.sprintf "    \"base_rate_per_s\": %.3f,\n" base_rate);
    Buffer.add_string b
      (Printf.sprintf "    \"over_factor\": %.1f,\n" over_factor);
    Buffer.add_string b
      (Printf.sprintf "    \"queue_p99_base_s\": %.6f,\n" p99_base);
    Buffer.add_string b
      (Printf.sprintf "    \"queue_p99_unshed_s\": %.6f,\n" p99_unshed);
    Buffer.add_string b
      (Printf.sprintf "    \"queue_p99_shed_s\": %.6f,\n" p99_shed);
    Buffer.add_string b "    \"max_p99_ratio\": 5.0,\n";
    Buffer.add_string b
      (Printf.sprintf "    \"goodput_unshed_wps\": %.6f,\n"
         s_unshed.Serve.Service.goodput_wps);
    Buffer.add_string b
      (Printf.sprintf "    \"goodput_shed_wps\": %.6f,\n"
         s_shed.Serve.Service.goodput_wps);
    Buffer.add_string b
      (Printf.sprintf "    \"shed\": %d,\n" s_shed.Serve.Service.shed);
    Buffer.add_string b
      (Printf.sprintf "    \"expired\": %d\n" s_shed.Serve.Service.expired);
    Buffer.add_string b "  },\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"chaos\": {\"configs\": %d, \"completed\": %d, \"dropped\": \
          %d, \"spec\": \"worker@0.5;straggler*4:p=0.3\", \"ok\": true},\n"
         !identity_configs !identity_completed !identity_dropped);
    Buffer.add_string b "  \"restart\": {\n";
    Buffer.add_string b
      (Printf.sprintf "    \"steady_submissions\": %d,\n" steady_count);
    Buffer.add_string b
      (Printf.sprintf "    \"restart_submissions\": %d,\n" restart_count);
    Buffer.add_string b
      (Printf.sprintf "    \"ledger_records\": %d,\n"
         (List.length records));
    Buffer.add_string b
      (Printf.sprintf "    \"plans_rewarmed\": %d,\n"
         stats.Serve.Service.r_warmed);
    Buffer.add_string b
      (Printf.sprintf "    \"breakers_reopened\": %d,\n"
         stats.Serve.Service.r_breakers);
    Buffer.add_string b
      (Printf.sprintf "    \"hit_rate_steady\": %.6f,\n" hit1);
    Buffer.add_string b
      (Printf.sprintf "    \"hit_rate_restored\": %.6f,\n" hit2);
    Buffer.add_string b
      (Printf.sprintf "    \"latency_p99_steady_s\": %.6f,\n" p99_1);
    Buffer.add_string b
      (Printf.sprintf "    \"latency_p99_restored_s\": %.6f,\n" p99_2);
    Buffer.add_string b "    \"max_rel_error\": 0.10\n";
    Buffer.add_string b "  }\n";
    Buffer.add_string b "}\n";
    Buffer.contents b
  in
  Out_channel.with_open_text "BENCH_overload.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote BENCH_overload.json\n"

(* pull "--trace FILE" out of the argument list *)
let rec extract_trace = function
  | [] -> (None, [])
  | "--trace" :: file :: rest ->
    let _, rest = extract_trace rest in
    (Some file, rest)
  | arg :: rest ->
    let trace, rest = extract_trace rest in
    (trace, arg :: rest)

let run_target name f =
  Obs.Trace.with_span
    ~attrs:[ ("target", Obs.Trace.String name) ]
    "bench.target" f

let () =
  let trace_file, args = extract_trace (List.tl (Array.to_list Sys.argv)) in
  let go () =
    match args with
    | [ "list" ] | [ "--list" ] ->
      List.iter
        (fun (name, descr, _) -> Printf.printf "%-8s %s\n" name descr)
        targets;
      print_endline "bechamel  Bechamel micro-benchmarks (partitioning)";
      print_endline
        "kernels-par  serial vs parallel kernel speedups (BENCH_kernels.json)";
      print_endline
        "fusion    fused vs unfused execution + shared scans \
         (BENCH_fusion.json)";
      print_endline
        "supervision  straggler speculation, breaker, re-planning \
         (BENCH_supervision.json)";
      print_endline
        "calibration  ledger-driven cost-model correction \
         (BENCH_calibration.json)";
      print_endline
        "serve     multi-tenant serving: identity matrix, plan cache, \
         shared scans (BENCH_serve.json)";
      print_endline
        "subplan   common-subplan sharing + sub-result cache \
         (BENCH_subplan.json)";
      print_endline
        "overload  shedding, SLOs, chaos identity, crash-restart \
         (BENCH_overload.json)"
    | [ "bechamel" ] -> run_target "bechamel" bechamel
    | [ "kernels-par" ] -> run_target "kernels-par" kernels_par
    | [ "fusion" ] -> run_target "fusion" fusion_bench
    | [ "supervision" ] -> run_target "supervision" supervision_bench
    | [ "calibration" ] -> run_target "calibration" calibration_bench
    | [ "serve" ] -> run_target "serve" serve_bench
    | [ "subplan" ] -> run_target "subplan" subplan_bench
    | [ "overload" ] -> run_target "overload" overload_bench
    | [] ->
      List.iter
        (fun (name, _, f) ->
           Printf.printf "\n###### %s ######\n%!" name;
           run_target name f)
        targets
    | names ->
      List.iter
        (fun raw ->
           let name = resolve raw in
           match List.find_opt (fun (n, _, _) -> n = name) targets with
           | Some (_, _, f) -> run_target name f
           | None ->
             if raw = "bechamel" then run_target "bechamel" bechamel
             else if raw = "kernels-par" then
               run_target "kernels-par" kernels_par
             else if raw = "fusion" then run_target "fusion" fusion_bench
             else if raw = "supervision" then
               run_target "supervision" supervision_bench
             else if raw = "calibration" then
               run_target "calibration" calibration_bench
             else if raw = "serve" then run_target "serve" serve_bench
             else if raw = "subplan" then run_target "subplan" subplan_bench
             else if raw = "overload" then
               run_target "overload" overload_bench
             else Printf.eprintf "unknown target %s (try: list)\n" raw)
        names
  in
  match trace_file with
  | None -> go ()
  | Some file ->
    let trace, () = Obs.Trace.collecting go in
    Obs.Export.write_file (Obs.Export.chrome_trace trace) ~filename:file;
    Printf.eprintf "trace: %d spans written to %s\n"
      (Obs.Trace.span_count trace) file
